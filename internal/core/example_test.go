package core_test

import (
	"fmt"

	"repro/internal/computation"
	"repro/internal/core"
	"repro/internal/predicate"
	"repro/internal/sim"
)

// ExampleLeastCut finds I_q for the paper's Figure 4 predicate: the least
// consistent cut with empty channels and x > 1 is {e1, f1, f2, g1}.
func ExampleLeastCut() {
	comp := sim.Fig4()
	q := predicate.AndLinear{Ps: []predicate.Linear{
		predicate.ChannelsEmpty{},
		predicate.Conj(predicate.VarCmp{Proc: 0, Var: "x", Op: predicate.GT, K: 1}),
	}}
	iq, ok := core.LeastCut(comp, q)
	fmt.Println(ok, iq)
	// Output: true <1 2 1>
}

// ExampleEGLinear runs Algorithm A1: EG(true) always holds and the
// witness is a full maximal cut sequence.
func ExampleEGLinear() {
	comp := sim.Fig2()
	path, ok := core.EGLinear(comp, predicate.True)
	fmt.Println(ok, len(path), path[0], path[len(path)-1])
	// Output: true 7 <0 0> <3 3>
}

// ExampleAGLinear runs Algorithm A2: channels are not always empty on
// Figure 2, and the counterexample is a consistent cut with a message in
// flight.
func ExampleAGLinear() {
	comp := sim.Fig2()
	cex, ok := core.AGLinear(comp, predicate.ChannelsEmpty{})
	fmt.Println(ok, cex, comp.InFlight(cex))
	// Output: false <0 2> 1
}

// ExampleEUConjLinear runs Algorithm A3 on the paper's Figure 4 example.
func ExampleEUConjLinear() {
	comp := sim.Fig4()
	p := predicate.Conj(
		predicate.VarCmp{Proc: 2, Var: "z", Op: predicate.LT, K: 6},
		predicate.VarCmp{Proc: 0, Var: "x", Op: predicate.LT, K: 4},
	)
	q := predicate.AndLinear{Ps: []predicate.Linear{
		predicate.ChannelsEmpty{},
		predicate.Conj(predicate.VarCmp{Proc: 0, Var: "x", Op: predicate.GT, K: 1}),
	}}
	path, ok := core.EUConjLinear(comp, p, q)
	fmt.Println(ok)
	for _, cut := range path {
		fmt.Println(cut)
	}
	// Output:
	// true
	// <0 0 0>
	// <0 1 0>
	// <0 2 0>
	// <1 2 0>
	// <1 2 1>
}

// ExampleAFConjunctive shows Garg–Waldecker interval boxes: with a
// message forcing the two true-windows to overlap in every interleaving,
// AF holds and the box is returned.
func ExampleAFConjunctive() {
	b := computation.NewBuilder(2)
	// P1 raises a and sends; P2 raises b on receipt and acks; P1 lowers a
	// only after the ack — so b's window must begin before a's window can
	// end, in every interleaving.
	computation.Set(b.Internal(0), "a", 1)
	_, m := b.Send(0)
	r := b.Receive(1, m)
	computation.Set(r, "b", 1)
	_, ack := b.Send(1)
	b.Receive(0, ack)
	computation.Set(b.Internal(0), "a", 0)
	comp := b.MustBuild()

	p := predicate.Conj(
		predicate.VarCmp{Proc: 0, Var: "a", Op: predicate.EQ, K: 1},
		predicate.VarCmp{Proc: 1, Var: "b", Op: predicate.EQ, K: 1},
	)
	box, ok := core.AFConjunctive(comp, p)
	fmt.Println(ok, len(box))
	// Output: true 2
}

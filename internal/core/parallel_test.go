package core

import (
	"runtime"
	"testing"

	"repro/internal/computation"
	"repro/internal/ctl"
	"repro/internal/predicate"
)

// The parallel sweeps promise bit-identical observables — verdict,
// evidence cut/path, and Stats totals — to the sequential algorithms at
// every worker count and GOMAXPROCS setting. These tests check that
// promise over the cross-validation corpus; run under -race they also pin
// the sharing discipline (workers touch disjoint indices, stats are
// per-worker until the join).

var parallelMatrix = struct {
	gomaxprocs []int
	workers    []int
}{[]int{1, 2, 8}, []int{2, 3, 8}}

func withGOMAXPROCS(t *testing.T, n int, body func()) {
	t.Helper()
	prev := runtime.GOMAXPROCS(n)
	defer runtime.GOMAXPROCS(prev)
	body()
}

func cutsEqual(a, b computation.Cut) bool {
	if (a == nil) != (b == nil) {
		return false
	}
	return a == nil || a.Equal(b)
}

func pathsEqual(a, b []computation.Cut) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !a[i].Equal(b[i]) {
			return false
		}
	}
	return true
}

// counters projects the deterministic portion of a Stats (everything but
// the per-run Algorithm/WitnessLength/Duration fields).
func counters(s *Stats) [6]int64 {
	return [6]int64{s.CutsVisited, s.PredicateEvals, s.ForbiddenCalls,
		s.AdvancementSteps, s.MemoHits, s.ShortCircuits}
}

func TestParallelAGLinearMatchesSequential(t *testing.T) {
	comps := testComps(t)
	for _, gmp := range parallelMatrix.gomaxprocs {
		withGOMAXPROCS(t, gmp, func() {
			for ci, comp := range comps {
				for pi, p := range conjBattery(comp) {
					seqSt := &Stats{}
					seqCex, seqOK := agLinear(comp, p, seqSt)
					for _, w := range parallelMatrix.workers {
						parSt := &Stats{}
						parCex, parOK := agLinearParallel(comp, p, parSt, w)
						if parOK != seqOK || !cutsEqual(parCex, seqCex) {
							t.Fatalf("gmp=%d comp=%d pred=%d workers=%d: parallel (%v,%v) != sequential (%v,%v)",
								gmp, ci, pi, w, parCex, parOK, seqCex, seqOK)
						}
						if counters(parSt) != counters(seqSt) {
							t.Fatalf("gmp=%d comp=%d pred=%d workers=%d: stats %v != sequential %v",
								gmp, ci, pi, w, counters(parSt), counters(seqSt))
						}
					}

					seqSt = &Stats{}
					seqCex, seqOK = agPostLinear(comp, p, seqSt)
					for _, w := range parallelMatrix.workers {
						parSt := &Stats{}
						parCex, parOK := agPostLinearParallel(comp, p, parSt, w)
						if parOK != seqOK || !cutsEqual(parCex, seqCex) {
							t.Fatalf("gmp=%d comp=%d pred=%d workers=%d: post-linear parallel (%v,%v) != sequential (%v,%v)",
								gmp, ci, pi, w, parCex, parOK, seqCex, seqOK)
						}
						if counters(parSt) != counters(seqSt) {
							t.Fatalf("gmp=%d comp=%d pred=%d workers=%d: post-linear stats %v != %v",
								gmp, ci, pi, w, counters(parSt), counters(seqSt))
						}
					}
				}
			}
		})
	}
}

func TestParallelEUConjLinearMatchesSequential(t *testing.T) {
	comps := testComps(t)
	for _, gmp := range parallelMatrix.gomaxprocs {
		withGOMAXPROCS(t, gmp, func() {
			for ci, comp := range comps {
				battery := conjBattery(comp)
				for pi, p := range battery {
					q := battery[(pi+1)%len(battery)]
					seqSt := &Stats{}
					seqPath, seqOK := euConjLinear(comp, p, q, seqSt)
					for _, w := range parallelMatrix.workers {
						parSt := &Stats{}
						parPath, parOK := euConjLinearParallel(comp, p, q, parSt, w)
						if parOK != seqOK || !pathsEqual(parPath, seqPath) {
							t.Fatalf("gmp=%d comp=%d pred=%d workers=%d: parallel (%v,%v) != sequential (%v,%v)",
								gmp, ci, pi, w, parPath, parOK, seqPath, seqOK)
						}
						if counters(parSt) != counters(seqSt) {
							t.Fatalf("gmp=%d comp=%d pred=%d workers=%d: stats %v != sequential %v",
								gmp, ci, pi, w, counters(parSt), counters(seqSt))
						}
					}
				}
			}
		})
	}
}

func TestParallelIrreduciblesMatchOrder(t *testing.T) {
	for _, comp := range testComps(t) {
		wantMI := MeetIrreducibles(comp)
		wantJI := JoinIrreducibles(comp)
		for _, w := range []int{0, 1, 2, 8} {
			if got := MeetIrreduciblesParallel(comp, w); !pathsEqual(got, wantMI) {
				t.Fatalf("workers=%d: MeetIrreduciblesParallel order differs", w)
			}
			if got := JoinIrreduciblesParallel(comp, w); !pathsEqual(got, wantJI) {
				t.Fatalf("workers=%d: JoinIrreduciblesParallel order differs", w)
			}
		}
	}
}

// TestDetectParallelMatchesDetect runs whole formulas — including the
// boolean dispatcher, the AU composition and the parallel AG/EU routes —
// through both entry points and demands identical Results.
func TestDetectParallelMatchesDetect(t *testing.T) {
	comps := testComps(t)
	for ci, comp := range comps {
		battery := conjBattery(comp)
		p := battery[0]
		q := battery[len(battery)-1]
		formulas := []ctl.Formula{
			ctl.AG{F: ctl.Atom{P: p}},
			ctl.Not{F: ctl.AG{F: ctl.Atom{P: p}}},
			ctl.EU{P: ctl.Atom{P: p}, Q: ctl.Atom{P: q}},
			ctl.AU{P: ctl.Atom{P: p.Negate()}, Q: ctl.Atom{P: q.Negate()}},
			ctl.And{L: ctl.AG{F: ctl.Atom{P: p}}, R: ctl.EF{F: ctl.Atom{P: q}}},
			ctl.Or{L: ctl.AG{F: ctl.Atom{P: p}}, R: ctl.EF{F: ctl.Atom{P: q}}},
		}
		for fi, f := range formulas {
			seq, err := Detect(comp, f)
			if err != nil {
				t.Fatal(err)
			}
			for _, w := range parallelMatrix.workers {
				par, err := DetectParallel(comp, f, w)
				if err != nil {
					t.Fatal(err)
				}
				if par.Holds != seq.Holds || par.Algorithm != seq.Algorithm {
					t.Fatalf("comp=%d formula=%d workers=%d: (%v,%q) != sequential (%v,%q)",
						ci, fi, w, par.Holds, par.Algorithm, seq.Holds, seq.Algorithm)
				}
				if !pathsEqual(par.Witness, seq.Witness) || !cutsEqual(par.Counterexample, seq.Counterexample) {
					t.Fatalf("comp=%d formula=%d workers=%d: evidence differs", ci, fi, w)
				}
				if counters(par.Stats) != counters(seq.Stats) {
					t.Fatalf("comp=%d formula=%d workers=%d: stats %v != %v",
						ci, fi, w, counters(par.Stats), counters(seq.Stats))
				}
			}
		}
	}
}

// Worker-count edge cases: more workers than items, zero events, and the
// workers<=1 fast path must all go through the same code shapes safely.
func TestParallelEdgeCases(t *testing.T) {
	empty := computation.NewBuilder(2).MustBuild()
	p := predicate.Conj(varCmp(0, "x", predicate.GE, 1))
	if cex, ok := agLinearParallel(empty, p, nil, 8); !ok || cex != nil {
		// x defaults to 0, so AG(x >= 1) fails at the only cut — unless the
		// final cut check catches it first, which it does.
		t.Logf("empty computation: cex=%v ok=%v", cex, ok)
	}
	if got := MeetIrreduciblesParallel(empty, 8); got != nil {
		t.Fatalf("MeetIrreduciblesParallel on empty computation = %v, want nil", got)
	}
	if got := JoinIrreduciblesParallel(empty, 8); got != nil {
		t.Fatalf("JoinIrreduciblesParallel on empty computation = %v, want nil", got)
	}
	// sweepFirst with workers far exceeding total.
	if k := sweepFirst(3, 64, func(i int) bool { return i == 2 }); k != 2 {
		t.Fatalf("sweepFirst = %d, want 2", k)
	}
	if k := sweepFirst(0, 4, func(int) bool { return true }); k != 0 {
		t.Fatalf("sweepFirst over empty range = %d, want 0 (total)", k)
	}
}

package core

import (
	"fmt"
	"testing"

	"repro/internal/computation"
	"repro/internal/ctl"
	"repro/internal/explore"
	"repro/internal/lattice"
	"repro/internal/predicate"
	"repro/internal/sim"
)

// Cross-validation: every structural algorithm must agree with the
// explicit-lattice CTL checker on a large battery of seeded random
// computations. This is the ground-truth test for the whole module.

// testComps returns a varied set of small computations whose lattices are
// cheap to enumerate.
func testComps(tb testing.TB) []*computation.Computation {
	tb.Helper()
	comps := []*computation.Computation{sim.Fig2(), sim.Fig4()}
	configs := []sim.RandomConfig{
		{Procs: 1, Events: 6, SendProb: 0, RecvProb: 0, Vars: 1, ValRange: 3},
		{Procs: 2, Events: 8, SendProb: 0.4, RecvProb: 0.8, Vars: 2, ValRange: 3},
		{Procs: 3, Events: 9, SendProb: 0.3, RecvProb: 0.7, Vars: 2, ValRange: 3},
		{Procs: 3, Events: 10, SendProb: 0.6, RecvProb: 0.9, Vars: 1, ValRange: 2},
		{Procs: 4, Events: 10, SendProb: 0.3, RecvProb: 0.6, Vars: 2, ValRange: 3},
		{Procs: 4, Events: 8, SendProb: 0, RecvProb: 0, Vars: 1, ValRange: 2}, // fully concurrent
	}
	for _, cfg := range configs {
		for seed := int64(0); seed < 25; seed++ {
			comps = append(comps, sim.Random(cfg, seed))
		}
	}
	return comps
}

// conjBattery builds conjunctive predicates exercising each computation's
// variables.
func conjBattery(comp *computation.Computation) []predicate.Conjunctive {
	var out []predicate.Conjunctive
	var locals []predicate.LocalPredicate
	for i := 0; i < comp.N(); i++ {
		for _, name := range comp.Vars(i) {
			locals = append(locals, varCmp(i, name, predicate.GE, 1))
		}
	}
	if len(locals) == 0 {
		return []predicate.Conjunctive{predicate.Conj()}
	}
	out = append(out, predicate.Conjunctive{Locals: locals})
	out = append(out, predicate.Conj(locals[0]))
	if len(locals) >= 2 {
		out = append(out, predicate.Conj(locals[0], locals[len(locals)-1]))
	}
	// A sparser variant with different thresholds.
	var sparse []predicate.LocalPredicate
	for idx, l := range locals {
		if idx%2 == 0 {
			v := l.(predicate.VarCmp)
			v.Op, v.K = predicate.LE, 1
			sparse = append(sparse, v)
		}
	}
	if len(sparse) > 0 {
		out = append(out, predicate.Conjunctive{Locals: sparse})
	}
	return out
}

func latticeOf(tb testing.TB, comp *computation.Computation) *lattice.Lattice {
	tb.Helper()
	l, err := lattice.Build(comp)
	if err != nil {
		tb.Fatalf("lattice build: %v", err)
	}
	return l
}

func TestCrossValidateLinearOperators(t *testing.T) {
	for ci, comp := range testComps(t) {
		l := latticeOf(t, comp)
		var linears []predicate.Linear
		for _, c := range conjBattery(comp) {
			linears = append(linears, c)
		}
		linears = append(linears, predicate.ChannelsEmpty{})
		if comp.N() >= 2 {
			linears = append(linears, predicate.ChannelEmpty{From: 0, To: 1})
			linears = append(linears, predicate.ChannelEmpty{From: 1, To: 0})
		}
		if len(conjBattery(comp)) > 0 {
			linears = append(linears, predicate.AndLinear{Ps: []predicate.Linear{
				conjBattery(comp)[0], predicate.ChannelsEmpty{},
			}})
		}
		for pi, p := range linears {
			// The battery predicates must actually be linear.
			if ok, a, b := l.CheckLinear(p); !ok {
				t.Fatalf("comp %d pred %d (%s) not linear: meet(%v, %v)", ci, pi, p, a, b)
			}
			atom := ctl.Atom{P: p}

			// EF via advancement.
			gotEF := EFLinear(comp, p)
			wantEF := explore.Holds(l, ctl.EF{F: atom})
			if gotEF != wantEF {
				t.Errorf("comp %d pred %s: EF = %v, lattice %v", ci, p, gotEF, wantEF)
			}
			// The least cut agrees with the lattice's.
			if cut, ok := LeastCut(comp, p); ok {
				want, wantOK := l.LeastSat(p)
				if !wantOK || !cut.Equal(want) {
					t.Errorf("comp %d pred %s: LeastCut = %v, lattice least = %v (%v)", ci, p, cut, want, wantOK)
				}
			}

			// A1.
			path, gotEG := EGLinear(comp, p)
			wantEG := explore.Holds(l, ctl.EG{F: atom})
			if gotEG != wantEG {
				t.Errorf("comp %d pred %s: A1 EG = %v, lattice %v", ci, p, gotEG, wantEG)
			}
			if gotEG {
				verifyEGPath(t, comp, p, path)
			}
			// A1 ablation: backtracking agrees.
			if bt := EGLinearBacktracking(comp, p); bt != gotEG {
				t.Errorf("comp %d pred %s: backtracking EG = %v, A1 = %v", ci, p, bt, gotEG)
			}

			// A2.
			cex, gotAG := AGLinear(comp, p)
			wantAG := explore.Holds(l, ctl.AG{F: atom})
			if gotAG != wantAG {
				t.Errorf("comp %d pred %s: A2 AG = %v, lattice %v", ci, p, gotAG, wantAG)
			}
			if !gotAG {
				if !comp.Consistent(cex) || p.Eval(comp, cex) {
					t.Errorf("comp %d pred %s: bad AG counterexample %v", ci, p, cex)
				}
			}
		}
	}
}

func verifyEGPath(t *testing.T, comp *computation.Computation, p predicate.Predicate, path []computation.Cut) {
	t.Helper()
	if len(path) != comp.TotalEvents()+1 {
		t.Errorf("EG path length %d, want %d", len(path), comp.TotalEvents()+1)
		return
	}
	for i, cut := range path {
		if !comp.Consistent(cut) || !p.Eval(comp, cut) {
			t.Errorf("EG path cut %v invalid at step %d", cut, i)
			return
		}
		if i > 0 && (path[i-1].Size()+1 != cut.Size() || !path[i-1].LessEq(cut)) {
			t.Errorf("EG path step %v → %v not ▷", path[i-1], cut)
			return
		}
	}
}

func TestCrossValidatePostLinearOperators(t *testing.T) {
	for ci, comp := range testComps(t) {
		l := latticeOf(t, comp)
		posts := []predicate.PostLinear{predicate.ChannelsEmpty{}}
		if comp.N() >= 2 {
			posts = append(posts, predicate.ChannelEmpty{From: 0, To: 1})
		}
		for _, c := range conjBattery(comp) {
			posts = append(posts, c)
		}
		for _, p := range posts {
			if ok, _, _ := l.CheckPostLinear(p); !ok {
				// Conjunctive predicates are always post-linear; channel
				// emptiness is regular. This must never fire.
				t.Fatalf("comp %d pred %s not post-linear", ci, p)
			}
			atom := ctl.Atom{P: p}
			gotEF := EFPostLinear(comp, p)
			if want := explore.Holds(l, ctl.EF{F: atom}); gotEF != want {
				t.Errorf("comp %d pred %s: EF post-linear = %v, lattice %v", ci, p, gotEF, want)
			}
			if cut, ok := GreatestCut(comp, p); ok {
				want, wantOK := l.GreatestSat(p)
				if !wantOK || !cut.Equal(want) {
					t.Errorf("comp %d pred %s: GreatestCut = %v, lattice %v (%v)", ci, p, cut, want, wantOK)
				}
			}
			path, gotEG := EGPostLinear(comp, p)
			if want := explore.Holds(l, ctl.EG{F: atom}); gotEG != want {
				t.Errorf("comp %d pred %s: EG post-linear = %v, lattice %v", ci, p, gotEG, want)
			}
			if gotEG {
				verifyEGPath(t, comp, p, path)
			}
			cex, gotAG := AGPostLinear(comp, p)
			if want := explore.Holds(l, ctl.AG{F: atom}); gotAG != want {
				t.Errorf("comp %d pred %s: AG post-linear = %v, lattice %v", ci, p, gotAG, want)
			}
			if !gotAG && (cex == nil || p.Eval(comp, cex)) {
				t.Errorf("comp %d pred %s: bad post-linear AG counterexample %v", ci, p, cex)
			}
		}
	}
}

func TestCrossValidateConjunctiveDisjunctive(t *testing.T) {
	for ci, comp := range testComps(t) {
		l := latticeOf(t, comp)
		for _, c := range conjBattery(comp) {
			d := c.Negate()
			atomC, atomD := ctl.Atom{P: c}, ctl.Atom{P: d}

			// AF conjunctive (Garg–Waldecker boxes).
			_, gotAFc := AFConjunctive(comp, c)
			if want := explore.Holds(l, ctl.AF{F: atomC}); gotAFc != want {
				t.Errorf("comp %d pred %s: AF conj = %v, lattice %v", ci, c, gotAFc, want)
			}
			// EG disjunctive.
			gotEGd := EGDisjunctive(comp, d)
			if want := explore.Holds(l, ctl.EG{F: atomD}); gotEGd != want {
				t.Errorf("comp %d pred %s: EG disj = %v, lattice %v", ci, d, gotEGd, want)
			}
			// AF disjunctive.
			gotAFd := AFDisjunctive(comp, d)
			if want := explore.Holds(l, ctl.AF{F: atomD}); gotAFd != want {
				t.Errorf("comp %d pred %s: AF disj = %v, lattice %v", ci, d, gotAFd, want)
			}
			// AG disjunctive.
			gotAGd := AGDisjunctive(comp, d)
			if want := explore.Holds(l, ctl.AG{F: atomD}); gotAGd != want {
				t.Errorf("comp %d pred %s: AG disj = %v, lattice %v", ci, d, gotAGd, want)
			}
			// EF disjunctive.
			gotEFd := EFDisjunctive(comp, d)
			if want := explore.Holds(l, ctl.EF{F: atomD}); gotEFd != want {
				t.Errorf("comp %d pred %s: EF disj = %v, lattice %v", ci, d, gotEFd, want)
			}
			// Disjunctive predicates are observer-independent: the
			// single-observation detector must agree with EF.
			if got := DetectObserverIndependent(comp, d); got != explore.Holds(l, ctl.EF{F: atomD}) {
				t.Errorf("comp %d pred %s: OI walk = %v disagrees with EF", ci, d, got)
			}
			if !explore.CheckObserverIndependent(l, atomD) {
				t.Errorf("comp %d pred %s: disjunctive predicate not observer-independent?!", ci, d)
			}
		}
	}
}

// TestAFBoxWitnessValidity verifies the structure of the Garg–Waldecker
// box whenever AF fires: each interval's states satisfy the process's
// conjuncts, and every ordered pair of intervals must-overlaps (begin_j
// happened-before end_i, with ±∞ conventions).
func TestAFBoxWitnessValidity(t *testing.T) {
	for ci, comp := range testComps(t) {
		for _, c := range conjBattery(comp) {
			box, ok := AFConjunctive(comp, c)
			if !ok || len(box) == 0 {
				continue
			}
			byProc := make(map[int][]predicate.LocalPredicate)
			for _, l := range c.Locals {
				byProc[l.Process()] = append(byProc[l.Process()], l)
			}
			for _, iv := range box {
				for k := iv.Lo; k <= iv.Hi; k++ {
					for _, l := range byProc[iv.Proc] {
						if !l.HoldsAt(comp, k) {
							t.Fatalf("comp %d pred %s: box interval %+v has false state %d", ci, c, iv, k)
						}
					}
				}
			}
			for _, a := range box {
				for _, b := range box {
					if a.Proc == b.Proc {
						continue
					}
					// begin_b → end_a (nil begin/end are ±∞, vacuous).
					if b.Lo == 0 || a.Hi >= comp.Len(a.Proc) {
						continue
					}
					beginB := comp.Event(b.Proc, b.Lo)
					endA := comp.Event(a.Proc, a.Hi+1)
					if !comp.HappenedBefore(beginB, endA) {
						t.Fatalf("comp %d pred %s: box %+v / %+v does not must-overlap", ci, c, a, b)
					}
				}
			}
		}
	}
}

func TestCrossValidateUntil(t *testing.T) {
	for ci, comp := range testComps(t) {
		l := latticeOf(t, comp)
		conjs := conjBattery(comp)
		for pi, p := range conjs {
			for qi, qc := range conjs {
				q := predicate.AndLinear{Ps: []predicate.Linear{qc, predicate.ChannelsEmpty{}}}
				f := ctl.EU{P: ctl.Atom{P: p}, Q: ctl.Atom{P: q}}
				path, got := EUConjLinear(comp, p, q)
				want := explore.Holds(l, f)
				if got != want {
					t.Errorf("comp %d p%d q%d: A3 EU = %v, lattice %v (p=%s q=%s)", ci, pi, qi, got, want, p, q)
				}
				if got {
					verifyEUPath(t, comp, p, q, path)
				}
				// AU over the disjunctive negations.
				dp, dq := p.Negate(), qc.Negate()
				fa := ctl.AU{P: ctl.Atom{P: dp}, Q: ctl.Atom{P: dq}}
				gotAU := AUDisjunctive(comp, dp, dq)
				wantAU := explore.Holds(l, fa)
				if gotAU != wantAU {
					t.Errorf("comp %d p%d q%d: AU = %v, lattice %v (p=%s q=%s)", ci, pi, qi, gotAU, wantAU, dp, dq)
				}
			}
		}
	}
}

func verifyEUPath(t *testing.T, comp *computation.Computation, p, q predicate.Predicate, path []computation.Cut) {
	t.Helper()
	if len(path) == 0 || !path[0].Equal(comp.InitialCut()) {
		t.Errorf("EU path %v does not start at ∅", path)
		return
	}
	for i, cut := range path {
		if !comp.Consistent(cut) {
			t.Errorf("EU path cut %v inconsistent", cut)
		}
		if i < len(path)-1 && !p.Eval(comp, cut) {
			t.Errorf("EU path: p fails before the end at %v", cut)
		}
		if i > 0 && (path[i-1].Size()+1 != cut.Size() || !path[i-1].LessEq(cut)) {
			t.Errorf("EU path step %v → %v not ▷", path[i-1], cut)
		}
	}
	if !q.Eval(comp, path[len(path)-1]) {
		t.Errorf("EU path: q fails at the end %v", path[len(path)-1])
	}
}

func TestCrossValidateArbitrary(t *testing.T) {
	for ci, comp := range testComps(t) {
		if ci%3 != 0 { // arbitrary solvers are slow; sample
			continue
		}
		l := latticeOf(t, comp)
		var p predicate.Predicate = predicate.ChannelsEmpty{}
		if cb := conjBattery(comp); len(cb) > 0 {
			p = predicate.Or{Ps: []predicate.Predicate{cb[0], predicate.ChannelsEmpty{}}}
		}
		atom := ctl.Atom{P: p}
		checks := []struct {
			name string
			got  bool
			f    ctl.Formula
		}{
			{"EF", EFArbitrary(comp, p), ctl.EF{F: atom}},
			{"EG", EGArbitrary(comp, p), ctl.EG{F: atom}},
			{"AF", AFArbitrary(comp, p), ctl.AF{F: atom}},
			{"AG", AGArbitrary(comp, p), ctl.AG{F: atom}},
			{"EU", EUArbitrary(comp, p, predicate.Terminated{}), ctl.EU{P: atom, Q: ctl.Atom{P: predicate.Terminated{}}}},
			{"AU", AUArbitrary(comp, p, predicate.Terminated{}), ctl.AU{P: atom, Q: ctl.Atom{P: predicate.Terminated{}}}},
		}
		for _, c := range checks {
			if want := explore.Holds(l, c.f); c.got != want {
				t.Errorf("comp %d: %sArbitrary = %v, lattice %v", ci, c.name, c.got, want)
			}
		}
	}
}

// TestCrossValidateDetect drives the dispatcher over parsed formulas and
// compares with the lattice checker, covering the routing logic itself.
func TestCrossValidateDetect(t *testing.T) {
	formulas := []string{
		"EF(conj(x0@P1 >= 1))",
		"AF(conj(x0@P1 >= 1))",
		"EG(disj(x0@P1 < 1))",
		"AG(disj(x0@P1 < 1))",
		"EF(channelsEmpty)",
		"EG(channelsEmpty)",
		"AG(channelsEmpty)",
		"E[conj(x0@P1 <= 2) U channelsEmpty]",
		"A[disj(x0@P1 >= 1) U disj(x0@P1 < 1)]",
		"EF(channelsEmpty && x0@P1 >= 1)",
		"AG(!(x0@P1 >= 2))",
		"EF(terminated)",
		"AG(true)",
		"EG(true) && !(EF(x0@P1 >= 3))",
	}
	for ci, comp := range testComps(t) {
		if comp.N() < 1 {
			continue
		}
		hasX0 := false
		for _, v := range comp.Vars(0) {
			if v == "x0" {
				hasX0 = true
			}
		}
		if !hasX0 {
			continue
		}
		l := latticeOf(t, comp)
		for _, src := range formulas {
			f, err := ctl.Parse(src)
			if err != nil {
				t.Fatalf("parse %q: %v", src, err)
			}
			res, err := Detect(comp, f)
			if err != nil {
				t.Fatalf("comp %d %q: %v", ci, src, err)
			}
			want := evalTop(l, f)
			if res.Holds != want {
				t.Errorf("comp %d %q: Detect = %v (%s), lattice %v", ci, src, res.Holds, res.Algorithm, want)
			}
		}
	}
}

// evalTop evaluates boolean combinations at the top level the way Detect
// does, delegating temporal subformulas to the lattice checker.
func evalTop(l *lattice.Lattice, f ctl.Formula) bool {
	switch g := f.(type) {
	case ctl.Not:
		return !evalTop(l, g.F)
	case ctl.And:
		return evalTop(l, g.L) && evalTop(l, g.R)
	case ctl.Or:
		return evalTop(l, g.L) || evalTop(l, g.R)
	default:
		return explore.Holds(l, f)
	}
}

// TestDetectRejectsNested ensures nested temporal operators are rejected,
// matching the paper's fragment.
func TestDetectRejectsNested(t *testing.T) {
	comp := sim.Fig2()
	f := ctl.EF{F: ctl.AG{F: ctl.Atom{P: predicate.True}}}
	if _, err := Detect(comp, f); err == nil {
		t.Error("nested temporal formula accepted")
	}
}

// TestDetectAlgorithmRouting pins the dispatcher's algorithm choices to
// the cells of Table 1.
func TestDetectAlgorithmRouting(t *testing.T) {
	comp := sim.Fig4()
	conj := ctl.Atom{P: fig4P()}
	disj := ctl.Atom{P: fig4P().Negate()}
	stable := ctl.Atom{P: predicate.Stable{P: predicate.Terminated{}}}
	cases := []struct {
		f    ctl.Formula
		want string
	}{
		{ctl.EF{F: conj}, "EF linear: Chase–Garg advancement"},
		{ctl.EG{F: conj}, "EG linear: Algorithm A1"},
		{ctl.AG{F: conj}, "AG linear: Algorithm A2 (meet-irreducibles)"},
		{ctl.AF{F: conj}, "AF conjunctive: Garg–Waldecker interval boxes"},
		{ctl.EF{F: disj}, "EF disjunctive: local state scan"},
		{ctl.EG{F: disj}, "EG disjunctive: ¬AF(¬p) via interval boxes"},
		{ctl.AF{F: disj}, "AF disjunctive: ¬EG(¬p) via A1"},
		{ctl.AG{F: disj}, "AG disjunctive: ¬EF(¬p) via advancement"},
		{ctl.EF{F: stable}, "EF stable: evaluate at the final cut"},
		{ctl.EG{F: stable}, "EG stable: evaluate at the initial cut"},
		{ctl.EU{P: conj, Q: ctl.Atom{P: fig4Q()}}, "EU conjunctive/linear: Algorithm A3"},
		{ctl.AU{P: disj, Q: disj}, "AU disjunctive: ¬(EG(¬q) ∨ E[¬q U ¬p∧¬q])"},
	}
	for _, c := range cases {
		res, err := Detect(comp, c.f)
		if err != nil {
			t.Fatalf("%s: %v", c.f, err)
		}
		if res.Algorithm != c.want {
			t.Errorf("%s routed to %q, want %q", c.f, res.Algorithm, c.want)
		}
	}
}

// TestExhaustiveTinyComputations cross-validates on every computation of a
// systematic family: all 2-process computations with ≤ 3 events per
// process, one optional message, and all boolean labelings of one variable
// — a brute-force sweep over structure space.
func TestExhaustiveTinyComputations(t *testing.T) {
	var comps []*computation.Computation
	for n1 := 0; n1 <= 3; n1++ {
		for n2 := 0; n2 <= 2; n2++ {
			for bits := 0; bits < 1<<uint(n1+n2+2); bits++ {
				comps = append(comps, tinyComp(n1, n2, -1, -1, bits))
				// One message from P1 event s to P2 after event r.
				for s := 1; s <= n1; s++ {
					for r := 0; r <= n2; r++ {
						comps = append(comps, tinyComp(n1, n2, s, r, bits))
					}
				}
			}
		}
	}
	p := predicate.Conj(varCmp(0, "b", predicate.EQ, 1), varCmp(1, "b", predicate.EQ, 1))
	d := p.Negate()
	for ci, comp := range comps {
		l := latticeOf(t, comp)
		if _, eg := EGLinear(comp, p); eg != explore.Holds(l, ctl.EG{F: ctl.Atom{P: p}}) {
			t.Fatalf("tiny %d: A1 disagrees", ci)
		}
		if _, ag := AGLinear(comp, p); ag != explore.Holds(l, ctl.AG{F: ctl.Atom{P: p}}) {
			t.Fatalf("tiny %d: A2 disagrees", ci)
		}
		if ef := EFLinear(comp, p); ef != explore.Holds(l, ctl.EF{F: ctl.Atom{P: p}}) {
			t.Fatalf("tiny %d: EF disagrees", ci)
		}
		if _, af := AFConjunctive(comp, p); af != explore.Holds(l, ctl.AF{F: ctl.Atom{P: p}}) {
			t.Fatalf("tiny %d: AF conj disagrees", ci)
		}
		if eg := EGDisjunctive(comp, d); eg != explore.Holds(l, ctl.EG{F: ctl.Atom{P: d}}) {
			t.Fatalf("tiny %d: EG disj disagrees", ci)
		}
		if path, eu := EUConjLinear(comp, p, p); eu != explore.Holds(l, ctl.EU{P: ctl.Atom{P: p}, Q: ctl.Atom{P: p}}) {
			t.Fatalf("tiny %d: A3 disagrees (path %v)", ci, path)
		}
	}
	if len(comps) < 1000 {
		t.Fatalf("systematic sweep too small: %d computations", len(comps))
	}
	t.Logf("validated %d tiny computations", len(comps))
}

// tinyComp builds a 2-process computation with n1/n2 internal events plus
// an optional message from P1's event s to a receive inserted on P2 right
// after its first r internal events, and boolean variable b per state
// taken from bits. The builder is fed P1 entirely first, so the receive
// can be placed at any position of P2.
func tinyComp(n1, n2, s, r, bits int) *computation.Computation {
	b := computation.NewBuilder(2)
	bit := func(i int) int { return (bits >> uint(i)) & 1 }
	b.SetInitial(0, "b", bit(0))
	b.SetInitial(1, "b", bit(1))
	var msg computation.Msg
	hasMsg := s >= 1 && s <= n1
	for k := 1; k <= n1; k++ {
		var e *computation.Event
		if hasMsg && k == s {
			e, msg = b.Send(0)
		} else {
			e = b.Internal(0)
		}
		computation.Set(e, "b", bit(1+k))
	}
	for k := 1; k <= n2; k++ {
		if hasMsg && k-1 == r {
			computation.Set(b.Receive(1, msg), "b", (r+bits)%2)
		}
		computation.Set(b.Internal(1), "b", bit(1+n1+k))
	}
	if hasMsg && r >= n2 {
		computation.Set(b.Receive(1, msg), "b", (r+bits)%2)
	}
	return b.MustBuild()
}

func ExampleDetect() {
	comp := sim.Fig4()
	f := ctl.MustParse("E[conj(z@P3 < 6, x@P1 < 4) U channelsEmpty && x@P1 > 1]")
	res, _ := Detect(comp, f)
	fmt.Println(res.Holds, res.Algorithm)
	// Output: true EU conjunctive/linear: Algorithm A3
}

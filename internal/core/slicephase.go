package core

import (
	"time"

	"repro/internal/computation"
	"repro/internal/pir"
	"repro/internal/predicate"
	"repro/internal/slice"
)

// This file is the slice phase of detection: the KindSliceFactor cell
// routes EF(factor ∧ rest) — and, dually, AG(¬(factor ∧ rest)) — through
// the computation slice of the regular factor instead of the exponential
// cut-space search.
//
// Soundness rests on the Mittal–Garg characterization: a conjunctive
// predicate is regular, so its satisfying cuts form a sublattice generated
// by the least satisfying cut I_p and the per-event least cuts J_p(e).
// Every cut of that sublattice is reachable from I_p by joins with
// J_p(next event), so the search below enumerates exactly the factor's
// satisfying cuts — EF(factor ∧ rest) holds iff rest holds at one of them.
// Events whose J is nil appear in no satisfying cut and are never visited.
//
// The phase returns a bare verdict, matching the exponential solvers it
// replaces (they return bool, no witness), so Result evidence is
// bit-identical to the unsliced dispatch.

// efSliceFactor decides EF(factor ∧ rest) over the factor's slice. whole
// is the original predicate factor ∧ rest, used only by the race-build
// cross-check against the unsliced solver.
func efSliceFactor(comp *computation.Computation, factor predicate.Linear, rest, whole predicate.Predicate, st *Stats) bool {
	start := time.Now()
	sl := slice.NewIncremental(comp, factor)
	st.sliceBuild(time.Since(start))
	kept, eliminated := sl.Counts()
	st.sliceEvents(int64(kept), int64(eliminated))

	holds := searchSlice(comp, sl, factor, rest, st)
	crossCheckSliceVerdict(comp, whole, holds)
	return holds
}

// searchSlice enumerates the slice sublattice from I_p by J-joins,
// evaluating the arbitrary remainder at each cut.
func searchSlice(comp *computation.Computation, sl *slice.Slice, factor predicate.Linear, rest predicate.Predicate, st *Stats) bool {
	ip, ok := sl.Least()
	if !ok {
		return false // factor unsatisfiable: no cut satisfies the conjunction
	}
	guard := sliceGuard(comp, sl, factor)

	seen := map[string]bool{ip.Key(): true}
	stack := []computation.Cut{ip.Copy()}
	for len(stack) > 0 {
		cut := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		st.cuts(1)
		st.sliceCuts(1)
		// One word test per process confirms the cut stayed inside the
		// slice (guards against a factor/slice mismatch); any cut failing
		// it fails the factor, so skipping it is sound.
		if guard != nil && !guard.Eval(comp, cut) {
			continue
		}
		st.evals(1)
		if rest.Eval(comp, cut) {
			return true
		}
		for i := range cut {
			if cut[i] >= comp.Len(i) {
				continue
			}
			jc, ok := sl.J(i, cut[i]+1)
			if !ok {
				continue // event eliminated: no satisfying cut contains it
			}
			next := computation.Join(cut, jc)
			if key := next.Key(); !seen[key] {
				seen[key] = true
				stack = append(stack, next)
			}
		}
	}
	return false
}

// sliceGuard builds the slice-restricted evaluator for the factor when its
// lowering admits one: the per-process bitsets are narrowed to the local
// states the slice keeps alive — at least I_p[i], and not past the first
// eliminated event (deadness is monotone along a process: a cut containing
// a later event contains every earlier one).
func sliceGuard(comp *computation.Computation, sl *slice.Slice, factor predicate.Linear) *pir.LoweredConj {
	lc, ok := factor.(*pir.LoweredConj)
	if !ok {
		return nil
	}
	ip, ok := sl.Least()
	if !ok {
		return nil
	}
	masks := make([][]uint64, comp.N())
	for i := 0; i < comp.N(); i++ {
		hi := comp.Len(i)
		for k := 1; k <= comp.Len(i); k++ {
			if _, ok := sl.J(i, k); !ok {
				hi = k - 1
				break
			}
		}
		m := make([]uint64, (comp.Len(i)+1+63)/64)
		for k := ip[i]; k <= hi; k++ {
			m[k>>6] |= 1 << (uint(k) & 63)
		}
		masks[i] = m
	}
	return lc.Restrict(masks)
}

package core

import (
	"testing"

	"repro/internal/computation"
	"repro/internal/ctl"
	"repro/internal/explore"
	"repro/internal/lattice"
	"repro/internal/predicate"
	"repro/internal/sim"
)

func varCmp(proc int, name string, op predicate.Op, k int) predicate.VarCmp {
	return predicate.VarCmp{Proc: proc, Var: name, Op: op, K: k}
}

// fig4P and fig4Q are the predicates of the paper's Figure 4 example:
// p = (z@P3 < 6 ∧ x@P1 < 4) conjunctive, q = (channelsEmpty ∧ x@P1 > 1)
// linear.
func fig4P() predicate.Conjunctive {
	return predicate.Conj(
		varCmp(2, "z", predicate.LT, 6),
		varCmp(0, "x", predicate.LT, 4),
	)
}

func fig4Q() predicate.AndLinear {
	return predicate.AndLinear{Ps: []predicate.Linear{
		predicate.ChannelsEmpty{},
		predicate.Conj(varCmp(0, "x", predicate.GT, 1)),
	}}
}

func TestLeastCutFig4(t *testing.T) {
	comp := sim.Fig4()
	iq, ok := LeastCut(comp, fig4Q())
	if !ok {
		t.Fatal("LeastCut found no satisfying cut for q")
	}
	want := computation.Cut{1, 2, 1} // {e1, f1, f2, g1}
	if !iq.Equal(want) {
		t.Fatalf("I_q = %v, want %v", iq, want)
	}
	// Agreement with the explicit lattice's least satisfying cut.
	l := lattice.MustBuild(comp)
	least, ok := l.LeastSat(fig4Q())
	if !ok || !least.Equal(want) {
		t.Errorf("lattice LeastSat = %v, %v; want %v, true", least, ok, want)
	}
	// q really is linear on this computation.
	if ok, a, b := l.CheckLinear(fig4Q()); !ok {
		t.Errorf("q not linear: meet of %v and %v violates q", a, b)
	}
	// p really is conjunctive-linear too.
	if ok, a, b := l.CheckLinear(fig4P()); !ok {
		t.Errorf("p not linear: meet of %v and %v violates p", a, b)
	}
}

func TestLeastCutUnsatisfiable(t *testing.T) {
	comp := sim.Fig4()
	p := predicate.Conj(varCmp(0, "x", predicate.GT, 100))
	if cut, ok := LeastCut(comp, p); ok {
		t.Errorf("LeastCut = %v for unsatisfiable predicate", cut)
	}
	// ChannelsEmpty with an unreceived message aborts via Forbidden.
	b := computation.NewBuilder(2)
	b.Send(0) // never received
	b.Internal(1)
	c2 := b.MustBuild()
	// The initial cut satisfies channelsEmpty (nothing sent yet), so the
	// least cut is ∅.
	cut, ok := LeastCut(c2, predicate.ChannelsEmpty{})
	if !ok || !cut.Equal(computation.Cut{0, 0}) {
		t.Errorf("LeastCut(channelsEmpty) = %v, %v; want ∅", cut, ok)
	}
	// But conjoined with "the send happened", no cut satisfies it.
	both := predicate.AndLinear{Ps: []predicate.Linear{
		predicate.Conj(predicate.LocalFn{
			Proc: 0, Name: "sent",
			Fn: func(c *computation.Computation, k int) bool { return k >= 1 },
		}),
		predicate.ChannelsEmpty{},
	}}
	if _, ok := LeastCut(c2, both); ok {
		t.Error("LeastCut found a cut for sent∧channelsEmpty with an unreceived message")
	}
}

func TestEULinearFig4(t *testing.T) {
	comp := sim.Fig4()
	path, ok := EUConjLinear(comp, fig4P(), fig4Q())
	if !ok {
		t.Fatal("E[p U q] should hold on Fig 4")
	}
	// The witness must run ∅ … I_q stepping one event at a time, with p at
	// all cuts but the last and q at the last.
	if !path[0].Equal(comp.InitialCut()) {
		t.Errorf("witness starts at %v", path[0])
	}
	last := path[len(path)-1]
	if !last.Equal(computation.Cut{1, 2, 1}) {
		t.Errorf("witness ends at %v, want I_q", last)
	}
	for i, cut := range path {
		if !comp.Consistent(cut) {
			t.Errorf("witness cut %v inconsistent", cut)
		}
		if i < len(path)-1 {
			if !fig4P().Eval(comp, cut) {
				t.Errorf("p fails at witness cut %v", cut)
			}
			if path[i+1].Size() != cut.Size()+1 || !cut.LessEq(path[i+1]) {
				t.Errorf("witness step %v → %v is not ▷", cut, path[i+1])
			}
		}
	}
	if !fig4Q().Eval(comp, last) {
		t.Error("q fails at the witness end")
	}
	// Agreement with the lattice checker.
	l := lattice.MustBuild(comp)
	f := ctl.EU{P: ctl.Atom{P: fig4P()}, Q: ctl.Atom{P: fig4Q()}}
	if !explore.Holds(l, f) {
		t.Error("explicit checker disagrees: E[p U q] should hold")
	}
}

func TestFig4PathCounts(t *testing.T) {
	// The paper's prose about Figure 4: out of 7 paths from the initial
	// cut to a q-satisfying cut, a subset leads to I_q. (The printed
	// witness path and the printed count 2 are mutually inconsistent with
	// the printed I_q — see EXPERIMENTS.md; this reconstruction matches
	// I_q and the total of 7.)
	comp := sim.Fig4()
	l := lattice.MustBuild(comp)
	q := fig4Q()
	counts := l.CountPaths()
	total, toIq := int64(0), int64(0)
	for i := 0; i < l.Size(); i++ {
		if q.Eval(comp, l.Cut(i)) {
			total += counts[i]
			if l.Cut(i).Equal(computation.Cut{1, 2, 1}) {
				toIq = counts[i]
			}
		}
	}
	if total != 7 {
		t.Errorf("paths from ∅ to q-cuts = %d, want 7", total)
	}
	if toIq != 3 {
		t.Errorf("paths from ∅ to I_q = %d, want 3 (see EXPERIMENTS.md)", toIq)
	}
}

func TestA1Directed(t *testing.T) {
	comp := sim.Fig2() // no variables; use channel predicate
	// EG(channelsEmpty): need a full path with channels always empty —
	// impossible here because f2's send must precede e1's receive.
	if path, ok := EGLinear(comp, predicate.ChannelsEmpty{}); ok {
		t.Errorf("EG(channelsEmpty) should fail on Fig 2, got path %v", path)
	}
	// EG(true) always holds and returns a full maximal path.
	path, ok := EGLinear(comp, predicate.True)
	if !ok {
		t.Fatal("EG(true) must hold")
	}
	if len(path) != comp.TotalEvents()+1 {
		t.Errorf("EG(true) path has %d cuts, want %d", len(path), comp.TotalEvents()+1)
	}
	if !path[0].Equal(comp.InitialCut()) || !path[len(path)-1].Equal(comp.FinalCut()) {
		t.Error("EG(true) path does not run ∅ → E")
	}
}

func TestA2Directed(t *testing.T) {
	comp := sim.Fig2()
	// AG(true) holds; AG(channelsEmpty) fails with a counterexample cut.
	if cex, ok := AGLinear(comp, predicate.True); !ok {
		t.Errorf("AG(true) failed with counterexample %v", cex)
	}
	cex, ok := AGLinear(comp, predicate.ChannelsEmpty{})
	if ok {
		t.Fatal("AG(channelsEmpty) should fail on Fig 2")
	}
	if !comp.Consistent(cex) {
		t.Errorf("counterexample %v is not consistent", cex)
	}
	if (predicate.ChannelsEmpty{}).Eval(comp, cex) {
		t.Errorf("counterexample %v does not violate the predicate", cex)
	}
}

func TestObserverIndependentWalk(t *testing.T) {
	comp := sim.Fig4()
	// "message 1 received" is stable, hence observer-independent.
	p := predicate.Received{ID: 1}
	if !DetectObserverIndependent(comp, p) {
		t.Error("received(1) should be detected along any observation")
	}
	// A predicate that never holds.
	never := predicate.Conj(varCmp(0, "x", predicate.GT, 99))
	if DetectObserverIndependent(comp, never) {
		t.Error("never-true predicate detected")
	}
}

func TestStableTrivia(t *testing.T) {
	comp := sim.Fig2()
	term := predicate.Stable{P: predicate.Terminated{}}
	if !EFStable(comp, term) || !AFStable(comp, term) {
		t.Error("EF/AF(terminated) must hold")
	}
	if EGStable(comp, term) || AGStable(comp, term) {
		t.Error("EG/AG(terminated) must fail: not true initially")
	}
	tru := predicate.Stable{P: predicate.True}
	if !EGStable(comp, tru) || !AGStable(comp, tru) {
		t.Error("EG/AG(true) must hold")
	}
}

func TestAFConjunctiveDirected(t *testing.T) {
	// Two processes ping-ponging: x=1 intervals must overlap in every
	// interleaving when the message ordering forces it.
	b := computation.NewBuilder(2)
	b.SetInitial(0, "x", 0)
	b.SetInitial(1, "y", 0)
	// P0: set x=1, send, set x=0 after ack.
	e1 := b.Internal(0)
	computation.Set(e1, "x", 1)
	s, m := b.Send(0)
	computation.Set(s, "x", 1)
	// P1 receives while y=1 from the start until after receive.
	computation.Set(b.Internal(1), "y", 1)
	r := b.Receive(1, m)
	computation.Set(r, "y", 0)
	computation.Set(b.Internal(0), "x", 0)
	comp := b.MustBuild()

	p := predicate.Conj(varCmp(0, "x", predicate.EQ, 1), varCmp(1, "y", predicate.EQ, 1))
	box, ok := AFConjunctive(comp, p)
	holds, err := explore.HoldsComp(comp, ctl.AF{F: ctl.Atom{P: p}})
	if err != nil {
		t.Fatal(err)
	}
	if ok != holds {
		t.Fatalf("AFConjunctive = %v, lattice says %v", ok, holds)
	}
	if ok && len(box) != 2 {
		t.Errorf("box = %v, want one interval per process", box)
	}
}

func TestAFConjunctiveEmptyAndImpossible(t *testing.T) {
	comp := sim.Fig2()
	if _, ok := AFConjunctive(comp, predicate.Conj()); !ok {
		t.Error("AF(empty conjunction) must hold")
	}
	never := predicate.Conj(predicate.LocalFn{
		Proc: 0, Name: "never",
		Fn: func(*computation.Computation, int) bool { return false },
	})
	if _, ok := AFConjunctive(comp, never); ok {
		t.Error("AF(never) must fail")
	}
}

package core

// Class inference for the channel and relational predicates
// (internal/predicate/channel.go, relational.go), exercised through the
// dispatcher: each predicate must route to the Table 1 cell its inferred
// class admits, and the verdict must agree with the explicit lattice.
// These predicates never flowed through the old as* probes in tests, so
// this file pins the routing now that classification lives in pir.

import (
	"strings"
	"testing"

	"repro/internal/computation"
	"repro/internal/ctl"
	"repro/internal/explore"
	"repro/internal/pir"
	"repro/internal/predicate"
	"repro/internal/sim"
)

// monotoneComp builds a computation where req@P1 and ack@P2 are
// nondecreasing, so MonotoneGE's linearity assumption genuinely holds
// (the race-build cross-check verifies it against the lattice).
func monotoneComp() *computation.Computation {
	b := computation.NewBuilder(2)
	b.SetInitial(0, "req", 0)
	b.SetInitial(1, "ack", 0)
	s1, m1 := b.Send(0)
	computation.Set(s1, "req", 1)
	computation.Set(b.Receive(1, m1), "ack", 1)
	s2, m2 := b.Send(0)
	computation.Set(s2, "req", 2)
	computation.Set(b.Receive(1, m2), "ack", 2)
	return b.MustBuild()
}

func TestMonotoneGEClassAndRouting(t *testing.T) {
	p := predicate.MonotoneGE{ProcY: 1, VarY: "ack", ProcX: 0, VarX: "req"}
	if got := pir.Infer(p); got != pir.ClassLinear {
		t.Fatalf("Infer(MonotoneGE) = %v, want linear only", got)
	}
	comp := monotoneComp()
	l := latticeOf(t, comp)
	if cl := explore.Classify(l, p); !cl.Linear {
		t.Fatalf("MonotoneGE empirically not linear on the monotone trace: %+v", cl)
	}
	for _, c := range []struct {
		f    ctl.Formula
		want string
	}{
		{ctl.EF{F: ctl.Atom{P: p}}, "EF linear: Chase–Garg advancement"},
		{ctl.EG{F: ctl.Atom{P: p}}, "EG linear: Algorithm A1"},
		{ctl.AG{F: ctl.Atom{P: p}}, "AG linear: Algorithm A2 (meet-irreducibles)"},
	} {
		res, err := Detect(comp, c.f)
		if err != nil {
			t.Fatal(err)
		}
		if res.Algorithm != c.want {
			t.Errorf("%s routed to %q, want %q", c.f, res.Algorithm, c.want)
		}
		if want := explore.Holds(l, c.f); res.Holds != want {
			t.Errorf("%s = %v, lattice says %v", c.f, res.Holds, want)
		}
	}
}

func TestChannelEmptyClassAndRouting(t *testing.T) {
	// ChannelEmpty is regular: closed under meet and join (a message is
	// in flight at the meet/join only if it is at one of the operands).
	p := predicate.ChannelEmpty{From: 0, To: 1}
	if got := pir.Infer(p); got != pir.ClassLinear|pir.ClassPostLinear {
		t.Fatalf("Infer(ChannelEmpty) = %v, want linear, post-linear", got)
	}
	for seed := int64(0); seed < 8; seed++ {
		comp := sim.Random(sim.DefaultRandomConfig(3, 8), seed)
		l := latticeOf(t, comp)
		cl := explore.Classify(l, p)
		if !cl.Linear || !cl.PostLinear || !cl.Regular {
			t.Fatalf("seed %d: ChannelEmpty empirically not regular: %+v", seed, cl)
		}
		for _, f := range []ctl.Formula{
			ctl.EF{F: ctl.Atom{P: p}},
			ctl.EG{F: ctl.Atom{P: p}},
			ctl.AG{F: ctl.Atom{P: p}},
		} {
			res, err := Detect(comp, f)
			if err != nil {
				t.Fatal(err)
			}
			if !strings.Contains(res.Algorithm, "linear") {
				t.Errorf("seed %d: %s routed to %q, want a linear-class algorithm", seed, f, res.Algorithm)
			}
			if want := explore.Holds(l, f); res.Holds != want {
				t.Errorf("seed %d: %s = %v, lattice says %v", seed, f, res.Holds, want)
			}
		}
	}
}

func TestInFlightAtMostStaysArbitrary(t *testing.T) {
	// InFlightAtMost(k) for k ≥ 1 is deliberately not classified: its
	// satisfying cuts are neither meet- nor join-closed in general, so it
	// must fall back to the exponential solver — and the verdict must
	// still match the lattice.
	p := predicate.InFlightAtMost{K: 1}
	if got := pir.Infer(p); got != pir.ClassArbitrary {
		t.Fatalf("Infer(InFlightAtMost) = %v, want arbitrary", got)
	}
	for seed := int64(0); seed < 8; seed++ {
		comp := sim.Random(sim.DefaultRandomConfig(3, 8), seed)
		l := latticeOf(t, comp)
		f := ctl.AG{F: ctl.Atom{P: p}}
		res, err := Detect(comp, f)
		if err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(res.Algorithm, "exponential") {
			t.Errorf("seed %d: routed to %q, want the exponential solver", seed, res.Algorithm)
		}
		if want := explore.Holds(l, f); res.Holds != want {
			t.Errorf("seed %d: AG(inFlight<=1) = %v, lattice says %v", seed, res.Holds, want)
		}
	}
}

func TestAtLeastKStaysArbitrary(t *testing.T) {
	// AtLeastK over stable locals is stable, but the type does not claim
	// it (the claim would be unsound for general locals), so the IR must
	// class it arbitrary and detection must agree with the lattice.
	p := predicate.AtLeastK{K: 1, Locals: []predicate.LocalPredicate{
		predicate.VarCmp{Proc: 0, Var: "x", Op: predicate.GE, K: 1},
		predicate.VarCmp{Proc: 1, Var: "x", Op: predicate.GE, K: 1},
	}}
	if got := pir.Infer(p); got != pir.ClassArbitrary {
		t.Fatalf("Infer(AtLeastK) = %v, want arbitrary", got)
	}
	comp := sim.Random(sim.DefaultRandomConfig(3, 8), 2)
	l := latticeOf(t, comp)
	f := ctl.EF{F: ctl.Atom{P: p}}
	res, err := Detect(comp, f)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Algorithm, "exponential") {
		t.Errorf("routed to %q, want the exponential solver", res.Algorithm)
	}
	if want := explore.Holds(l, f); res.Holds != want {
		t.Errorf("EF(atLeast 1) = %v, lattice says %v", res.Holds, want)
	}
}

package core

import (
	"strings"
	"testing"

	"repro/internal/ctl"
	"repro/internal/predicate"
	"repro/internal/sim"
)

func TestDetectNested(t *testing.T) {
	comp := sim.Fig2()
	// "Always recoverable": from every global state the computation can
	// still reach termination — trivially true on a finite trace, but the
	// shape exercises nesting.
	f := ctl.AG{F: ctl.EF{F: ctl.Atom{P: predicate.Terminated{}}}}
	res, err := DetectNested(comp, f, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Holds {
		t.Error("AG(EF(terminated)) must hold")
	}
	if !strings.Contains(res.Algorithm, "nested CTL") {
		t.Errorf("algorithm = %q", res.Algorithm)
	}

	// EF(EG(channelsEmpty)): from some cut onwards channels can stay
	// empty — true via the final cut.
	g := ctl.EF{F: ctl.EG{F: ctl.Atom{P: predicate.ChannelsEmpty{}}}}
	res, err = DetectNested(comp, g, 0)
	if err != nil || !res.Holds {
		t.Errorf("EF(EG(channelsEmpty)) = %v, %v", res.Holds, err)
	}

	// Non-nested formulas still take the polynomial route.
	h := ctl.EG{F: ctl.Atom{P: predicate.True}}
	res, err = DetectNested(comp, h, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Algorithm, "Algorithm A1") {
		t.Errorf("non-nested formula routed to %q", res.Algorithm)
	}
}

func TestDetectNestedSizeGuard(t *testing.T) {
	comp := sim.Grid(3, 3) // 64 cuts
	f := ctl.AG{F: ctl.EF{F: ctl.Atom{P: predicate.Terminated{}}}}
	if _, err := DetectNested(comp, f, 10); err == nil {
		t.Error("size guard did not trip")
	}
	if res, err := DetectNested(comp, f, 64); err != nil || !res.Holds {
		t.Errorf("exact-size evaluation failed: %v, %v", res.Holds, err)
	}
}

//go:build race

package core

import (
	"fmt"

	"repro/internal/computation"
	"repro/internal/explore"
	"repro/internal/lattice"
	"repro/internal/pir"
	"repro/internal/predicate"
)

// In race-enabled builds (i.e. under `go test -race`, which CI runs on
// every matrix leg) each temporal dispatch cross-checks the IR's inferred
// class against brute-force classification on the explicit lattice, so
// drift between the IR and the lattice classifier returns an error
// instead of silently picking an algorithm the predicate's actual
// structure does not admit. The check is quadratic in the lattice size,
// so it only fires on small computations — exactly the sizes the
// property tests generate.
func crossCheckClass(comp *computation.Computation, p *pir.Pred) error {
	if comp.TotalEvents() > 8 || comp.N() > 4 {
		return nil
	}
	l, err := lattice.BuildLimited(comp, 4096)
	if err != nil {
		return nil // lattice too large to enumerate; not an IR fault
	}
	return explore.CrossCheckIR(l, p)
}

// crossCheckSliceVerdict compares the sliced EF verdict against the
// unsliced exponential solver on small computations. A mismatch means the
// slice search missed (or invented) a satisfying cut — slice unsoundness,
// not an input fault — so it panics rather than returning an error.
func crossCheckSliceVerdict(comp *computation.Computation, whole predicate.Predicate, sliced bool) {
	if comp.TotalEvents() > 10 || comp.N() > 4 {
		return
	}
	if unsliced := efArbitrary(comp, whole, nil); unsliced != sliced {
		panic(fmt.Sprintf("core: sliced EF verdict %v disagrees with unsliced %v for %s",
			sliced, unsliced, whole))
	}
}

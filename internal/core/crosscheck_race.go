//go:build race

package core

import (
	"repro/internal/computation"
	"repro/internal/explore"
	"repro/internal/lattice"
	"repro/internal/pir"
)

// In race-enabled builds (i.e. under `go test -race`, which CI runs on
// every matrix leg) each temporal dispatch cross-checks the IR's inferred
// class against brute-force classification on the explicit lattice, so
// drift between the IR and the lattice classifier returns an error
// instead of silently picking an algorithm the predicate's actual
// structure does not admit. The check is quadratic in the lattice size,
// so it only fires on small computations — exactly the sizes the
// property tests generate.
func crossCheckClass(comp *computation.Computation, p *pir.Pred) error {
	if comp.TotalEvents() > 8 || comp.N() > 4 {
		return nil
	}
	l, err := lattice.BuildLimited(comp, 4096)
	if err != nil {
		return nil // lattice too large to enumerate; not an IR fault
	}
	return explore.CrossCheckIR(l, p)
}

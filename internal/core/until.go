package core

import (
	"repro/internal/computation"
	"repro/internal/predicate"
)

// EUConjLinear is Algorithm A3 of the paper: it detects E[p U q] for a
// conjunctive predicate p and a linear predicate q in polynomial time.
//
// By Theorem 7 it suffices to look for a path from ∅ to I_q — the least
// consistent cut satisfying q — with p holding at every cut strictly below
// I_q. Step 1 finds I_q by the advancement algorithm; Step 2 checks EG(p)
// with Algorithm A1 on the sub-computations I_q − {e} for each maximal
// event e of I_q (every path into I_q passes through one of them).
//
// The returned path, when ok, runs ∅ … I_q with q at the last cut and p at
// all earlier ones. As the paper's footnote notes, q need not be fully
// linear: the Linear interface only exercises the least-satisfying-cut
// property.
func EUConjLinear(comp *computation.Computation, p predicate.Conjunctive, q predicate.Linear) (path []computation.Cut, ok bool) {
	return euConjLinear(comp, p, q, nil)
}

func euConjLinear(comp *computation.Computation, p predicate.Conjunctive, q predicate.Linear, st *Stats) (path []computation.Cut, ok bool) {
	// Step 1: find I_q.
	iq, ok := leastCut(comp, q, st)
	if !ok {
		return nil, false // q holds nowhere, so no until-prefix can end
	}
	if iq.Equal(comp.InitialCut()) {
		return []computation.Cut{iq}, true // q holds initially (k = 0 prefix)
	}
	// Step 2: EG(p) on each one-event-smaller prefix of I_q.
	for i := range iq {
		if !comp.MaximalEvent(iq, i) {
			continue
		}
		g := iq.Copy()
		g[i]--
		sub := comp.Prefix(g)
		if egPath, holds := egLinear(sub, p, st); holds {
			// Extend the witness through I_q itself.
			full := make([]computation.Cut, 0, len(egPath)+1)
			for _, c := range egPath {
				full = append(full, c.Copy())
			}
			return append(full, iq), true
		}
	}
	return nil, false
}

// (The footnote to Theorem 7 is honored by construction: EUConjLinear only
// exercises q's least-satisfying-cut property through LeastCut, so any
// Linear implementation whose Forbidden is sound — even for a predicate
// whose satisfying set is not meet-closed but has a least element — is
// detected correctly. TestA3FootnoteLeastCutProperty pins this.)

// AUDisjunctive detects A[p U q] for disjunctive predicates p and q using
// the paper's composition
//
//	A[p U q] ⟺ ¬( EG(¬q) ∨ E[¬q U (¬p ∧ ¬q)] )
//
// where ¬q is conjunctive (detected by Algorithm A1 under EG) and
// ¬p ∧ ¬q is conjunctive, hence linear (detected by Algorithm A3 under EU).
// Total cost O(n|E|) predicate evaluations.
func AUDisjunctive(comp *computation.Computation, p, q predicate.Disjunctive) bool {
	return auDisjunctive(comp, p, q, nil, 1)
}

func auDisjunctive(comp *computation.Computation, p, q predicate.Disjunctive, st *Stats, workers int) bool {
	notQ := q.Negate()
	if _, eg := egLinear(comp, notQ, st); eg {
		return false // some full path avoids q entirely
	}
	bad := predicate.MergeConj(p.Negate(), notQ)
	if _, eu := euConjLinearParallel(comp, notQ, bad, st, workers); eu {
		return false // some path reaches ¬p∧¬q with q never seen before
	}
	return true
}

package core

import (
	"math/rand"
	"testing"

	"repro/internal/computation"
	"repro/internal/explore"
	"repro/internal/lattice"
	"repro/internal/pir"
	"repro/internal/predicate"
	"repro/internal/sim"
)

// decayComp is a two-process computation where x@P1 starts at 0 and is
// set to 1, so "x@P1 == 0" is true initially and decays — the canonical
// unsound Stable claim.
func decayComp() *computation.Computation {
	b := computation.NewBuilder(2)
	b.SetInitial(0, "x", 0)
	computation.Set(b.Internal(0), "x", 1)
	b.Internal(1)
	return b.MustBuild()
}

// unsoundStable wraps the decaying predicate in a Stable assertion.
func unsoundStable() predicate.Predicate {
	return predicate.Stable{P: predicate.VarCmp{Proc: 0, Var: "x", Op: predicate.EQ, K: 0}}
}

// TestIRClassSoundnessProperty is the dispatcher-drift property test:
// over random non-temporal formulas and random computations, every class
// the IR infers statically must hold empirically on the explicit lattice
// (the direction CrossCheckIR enforces inside Detect in race builds), and
// the projection explore.FromIR must never claim more than
// explore.Classify observes.
func TestIRClassSoundnessProperty(t *testing.T) {
	for seed := int64(0); seed < 150; seed++ {
		rng := rand.New(rand.NewSource(seed))
		comp := sim.Random(sim.DefaultRandomConfig(2+rng.Intn(3), 5+rng.Intn(4)), seed)
		l, err := lattice.Build(comp)
		if err != nil {
			t.Fatal(err)
		}
		f := randomNonTemporal(rng, comp, 2)
		p, err := pir.Compile(f)
		if err != nil {
			t.Fatal(err)
		}
		if err := explore.CrossCheckIR(l, p); err != nil {
			t.Errorf("seed %d: %v", seed, err)
		}
		static := explore.FromIR(p.Class)
		empirical := explore.Classify(l, p.P)
		if static.Linear && !empirical.Linear {
			t.Errorf("seed %d: %s: IR claims linear, lattice disagrees", seed, p.P)
		}
		if static.PostLinear && !empirical.PostLinear {
			t.Errorf("seed %d: %s: IR claims post-linear, lattice disagrees", seed, p.P)
		}
		if static.Stable && !empirical.Stable {
			t.Errorf("seed %d: %s: IR claims stable, lattice disagrees", seed, p.P)
		}
		if static.ObserverIndependent && !empirical.ObserverIndependent {
			t.Errorf("seed %d: %s: IR claims observer-independent, lattice disagrees", seed, p.P)
		}
	}
}

// TestCrossCheckIRDetectsUnsoundClaim pins that the cross-check actually
// fires: a predicate wrapped in Stable whose truth decays must be flagged.
func TestCrossCheckIRDetectsUnsoundClaim(t *testing.T) {
	comp := decayComp()
	l, err := lattice.Build(comp)
	if err != nil {
		t.Fatal(err)
	}
	p := pir.FromPredicate(unsoundStable())
	if !p.Class.Has(pir.ClassStable) {
		t.Fatalf("stable(...) not classed stable: %v", p.Class)
	}
	if err := explore.CrossCheckIR(l, p); err == nil {
		t.Fatal("CrossCheckIR accepted a decaying predicate wrapped in stable(...)")
	}
}

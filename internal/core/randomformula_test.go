package core

import (
	"math/rand"
	"testing"

	"repro/internal/computation"
	"repro/internal/ctl"
	"repro/internal/predicate"
	"repro/internal/sim"
)

// randomFormula builds a random formula of the paper's fragment: one
// temporal operator over randomly composed non-temporal predicates, or a
// boolean combination of such formulas.
func randomFormula(rng *rand.Rand, comp *computation.Computation, depth int) ctl.Formula {
	if depth > 0 && rng.Intn(3) == 0 {
		l := randomFormula(rng, comp, depth-1)
		r := randomFormula(rng, comp, depth-1)
		switch rng.Intn(3) {
		case 0:
			return ctl.And{L: l, R: r}
		case 1:
			return ctl.Or{L: l, R: r}
		default:
			return ctl.Not{F: l}
		}
	}
	inner := randomNonTemporal(rng, comp, 2)
	switch rng.Intn(7) {
	case 0:
		return ctl.EF{F: inner}
	case 1:
		return ctl.AF{F: inner}
	case 2:
		return ctl.EG{F: inner}
	case 3:
		return ctl.AG{F: inner}
	case 4:
		return ctl.EU{P: inner, Q: randomNonTemporal(rng, comp, 1)}
	case 5:
		return ctl.AU{P: inner, Q: randomNonTemporal(rng, comp, 1)}
	default:
		return inner
	}
}

func randomNonTemporal(rng *rand.Rand, comp *computation.Computation, depth int) ctl.Formula {
	if depth > 0 && rng.Intn(2) == 0 {
		l := randomNonTemporal(rng, comp, depth-1)
		r := randomNonTemporal(rng, comp, depth-1)
		switch rng.Intn(3) {
		case 0:
			return ctl.And{L: l, R: r}
		case 1:
			return ctl.Or{L: l, R: r}
		default:
			return ctl.Not{F: l}
		}
	}
	return ctl.Atom{P: randomAtom(rng, comp)}
}

func randomAtom(rng *rand.Rand, comp *computation.Computation) predicate.Predicate {
	mkLocal := func() predicate.LocalPredicate {
		proc := rng.Intn(comp.N())
		vars := comp.Vars(proc)
		if len(vars) == 0 {
			return predicate.VarCmp{Proc: proc, Var: "none", Op: predicate.EQ, K: 0}
		}
		ops := []predicate.Op{predicate.LT, predicate.LE, predicate.EQ, predicate.NE, predicate.GE, predicate.GT}
		return predicate.VarCmp{
			Proc: proc,
			Var:  vars[rng.Intn(len(vars))],
			Op:   ops[rng.Intn(len(ops))],
			K:    rng.Intn(4),
		}
	}
	switch rng.Intn(8) {
	case 0:
		return predicate.ChannelsEmpty{}
	case 1:
		return predicate.Terminated{}
	case 2:
		ids := comp.Messages()
		if len(ids) == 0 {
			return predicate.True
		}
		return predicate.Received{ID: ids[rng.Intn(len(ids))]}
	case 3:
		return predicate.Conj(mkLocal(), mkLocal())
	case 4:
		return predicate.Disj(mkLocal(), mkLocal())
	case 5:
		return mkLocal()
	case 6:
		return predicate.Const(rng.Intn(2) == 0)
	default:
		if comp.N() >= 2 {
			return predicate.ChannelEmpty{From: rng.Intn(comp.N()), To: rng.Intn(comp.N())}
		}
		return predicate.ChannelsEmpty{}
	}
}

// TestRandomFormulaCrossValidation hammers the dispatcher with hundreds of
// random (computation, formula) pairs and checks every verdict against the
// explicit-lattice checker. This exercises the routing, the Compile
// normalization, and every structural algorithm behind them.
func TestRandomFormulaCrossValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(2002))
	checked := 0
	for trial := 0; trial < 400; trial++ {
		cfg := sim.RandomConfig{
			Procs:    2 + rng.Intn(3),
			Events:   6 + rng.Intn(7),
			SendProb: rng.Float64() * 0.6,
			RecvProb: 0.5 + rng.Float64()*0.5,
			Vars:     1 + rng.Intn(2),
			ValRange: 3,
		}
		comp := sim.Random(cfg, rng.Int63())
		l := latticeOf(t, comp)
		f := randomFormula(rng, comp, 2)
		res, err := Detect(comp, f)
		if err != nil {
			t.Fatalf("trial %d: Detect(%s): %v", trial, f, err)
		}
		want := evalTop(l, f)
		if res.Holds != want {
			t.Fatalf("trial %d: Detect(%s) = %v via %q, lattice says %v\ncomputation: %d procs, %d events",
				trial, f, res.Holds, res.Algorithm, want, comp.N(), comp.TotalEvents())
		}
		checked++
	}
	t.Logf("cross-validated %d random formulas", checked)
}

// randomNested builds formulas with genuinely nested temporal operators.
func randomNested(rng *rand.Rand, comp *computation.Computation, depth int) ctl.Formula {
	var inner ctl.Formula
	if depth <= 0 {
		inner = ctl.Atom{P: randomAtom(rng, comp)}
	} else {
		inner = randomNested(rng, comp, depth-1)
	}
	switch rng.Intn(6) {
	case 0:
		return ctl.EF{F: inner}
	case 1:
		return ctl.AF{F: inner}
	case 2:
		return ctl.EG{F: inner}
	case 3:
		return ctl.AG{F: inner}
	case 4:
		return ctl.EU{P: inner, Q: ctl.Atom{P: randomAtom(rng, comp)}}
	default:
		return ctl.Not{F: inner}
	}
}

// TestDetectNestedCrossValidation checks the nested-CTL extension against
// the lattice checker on random nested formulas.
func TestDetectNestedCrossValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 150; trial++ {
		comp := sim.Random(sim.DefaultRandomConfig(3, 8), rng.Int63())
		l := latticeOf(t, comp)
		f := randomNested(rng, comp, 2)
		res, err := DetectNested(comp, f, 0)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if want := evalTop(l, f); res.Holds != want {
			t.Fatalf("trial %d: DetectNested(%s) = %v, lattice %v", trial, f, res.Holds, want)
		}
	}
}

// TestA1ArbitraryChoiceProperty validates Theorem 2 directly: A1's answer
// is independent of WHICH satisfying predecessor is chosen. A randomized
// variant that picks a random satisfying predecessor at every step must
// agree with the deterministic A1 on every input.
func TestA1ArbitraryChoiceProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 150; trial++ {
		comp := sim.Random(sim.DefaultRandomConfig(3, 10), rng.Int63())
		p := predicate.AndLinear{Ps: []predicate.Linear{
			predicate.Conj(predicate.VarCmp{Proc: 0, Var: "x0", Op: predicate.LE, K: 2}),
			predicate.ChannelsEmpty{},
		}}
		_, want := EGLinear(comp, p)
		for rep := 0; rep < 5; rep++ {
			if got := egLinearRandomChoice(comp, p, rng); got != want {
				t.Fatalf("trial %d rep %d: random-choice A1 = %v, deterministic = %v",
					trial, rep, got, want)
			}
		}
	}
}

// egLinearRandomChoice is A1 with a uniformly random satisfying
// predecessor chosen at each step.
func egLinearRandomChoice(comp *computation.Computation, p predicate.Predicate, rng *rand.Rand) bool {
	w := comp.FinalCut()
	if !p.Eval(comp, w) {
		return false
	}
	initial := comp.InitialCut()
	for !w.Equal(initial) {
		var sat []int
		for i := range w {
			if !comp.MaximalEvent(w, i) {
				continue
			}
			w[i]--
			if p.Eval(comp, w) {
				sat = append(sat, i)
			}
			w[i]++
		}
		if len(sat) == 0 {
			return false
		}
		w[sat[rng.Intn(len(sat))]]--
	}
	return true
}

package core

import (
	"testing"
	"time"

	"repro/internal/predicate"
	"repro/internal/sim"
)

// TestLargeScaleSmoke drives the polynomial algorithms on a computation
// whose lattice is astronomically large (8 processes × 100k events): the
// structural algorithms must answer in seconds while explicit enumeration
// would need more cuts than atoms in the universe. Skipped with -short.
func TestLargeScaleSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("large-scale smoke test skipped in -short mode")
	}
	const procs, events = 8, 100_000
	start := time.Now()
	comp := sim.Random(sim.DefaultRandomConfig(procs, events), 99)
	t.Logf("generated %d events in %v", comp.TotalEvents(), time.Since(start))

	conj := predicate.Conj(
		predicate.VarCmp{Proc: 0, Var: "x0", Op: predicate.LE, K: 3},
		predicate.VarCmp{Proc: 3, Var: "x0", Op: predicate.LE, K: 3},
	)

	start = time.Now()
	if ok := EFLinear(comp, conj); !ok {
		t.Error("EF of a satisfiable conjunctive predicate failed")
	}
	t.Logf("EF advancement: %v", time.Since(start))

	start = time.Now()
	path, ok := EGLinear(comp, predicate.True)
	if !ok || len(path) != events+1 {
		t.Errorf("EG(true): ok=%v len=%d", ok, len(path))
	}
	t.Logf("A1 full path: %v", time.Since(start))

	start = time.Now()
	if _, ok := AGLinear(comp, predicate.True); !ok {
		t.Error("AG(true) failed")
	}
	t.Logf("A2 over %d meet-irreducibles: %v", comp.TotalEvents(), time.Since(start))

	start = time.Now()
	if !DetectObserverIndependent(comp, predicate.Terminated{}) {
		t.Error("terminated not observed")
	}
	t.Logf("single-observation walk: %v", time.Since(start))

	// AF conjunctive via interval boxes at scale.
	start = time.Now()
	_, _ = AFConjunctive(comp, conj)
	t.Logf("AF interval boxes: %v", time.Since(start))

	// A3 at scale (q = conjunct on another process).
	q := predicate.Conj(predicate.VarCmp{Proc: 5, Var: "x0", Op: predicate.GE, K: 1})
	start = time.Now()
	_, _ = EUConjLinear(comp, conj, q)
	t.Logf("A3: %v", time.Since(start))
}

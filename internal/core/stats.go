package core

import (
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/pir"
)

// Stats records the work one Detect run performed — the paper's complexity
// claims as observed numbers. It is attached to every Result, aggregated
// across the boolean recursion of the formula.
//
// The collection discipline keeps the hot paths honest: algorithms thread
// a *Stats through unexported variants, every increment is a nil-checked
// plain add (one predictable branch — no locks, no atomics on the per-cut
// path), and the exported algorithm entry points pass nil, so direct
// callers (benchmarks included) pay only the nil check.
type Stats struct {
	// Algorithm is the dispatcher's choice, mirroring Result.Algorithm.
	Algorithm string `json:"algorithm"`
	// CutsVisited counts consistent cuts materialized, advanced through, or
	// expanded during search.
	CutsVisited int64 `json:"cuts_visited"`
	// PredicateEvals counts global-predicate evaluations, the unit of the
	// paper's O(n|E|) bounds. Local (per-state) conjunct evaluations count
	// here too — they are the evaluation unit of the interval algorithms.
	PredicateEvals int64 `json:"predicate_evals"`
	// ForbiddenCalls counts Forbidden/Retreat oracle calls (advancement
	// algorithms).
	ForbiddenCalls int64 `json:"forbidden_calls"`
	// AdvancementSteps counts cut advancements/retreats and interval
	// candidate eliminations — the progress steps the linearity proofs
	// bound by |E|.
	AdvancementSteps int64 `json:"advancement_steps"`
	// MemoHits counts memoized-failure hits in the exponential solvers.
	MemoHits int64 `json:"memo_hits"`
	// ShortCircuits counts boolean operands skipped because the other
	// operand already decided the combination — potentially-exponential
	// work the dispatcher provably never started.
	ShortCircuits int64 `json:"short_circuits"`
	// SliceBuild is the wall-clock time spent constructing computation
	// slices (KindSliceFactor dispatches; zero when no slice was built).
	SliceBuild time.Duration `json:"slice_build_ns"`
	// SliceEventsKept / SliceEventsEliminated count events that survived
	// in, respectively were removed by, the slices built this run. An
	// eliminated event appears in no satisfying cut of the regular factor,
	// so the sliced search provably never visits a cut containing it.
	SliceEventsKept       int64 `json:"slice_events_kept"`
	SliceEventsEliminated int64 `json:"slice_events_eliminated"`
	// SliceCutsEnumerated counts cuts of the slice sublattice the factored
	// search visited — the |slice| of its O(|slice|·n) bound, to compare
	// against the 2^|E| the unsliced cell would have searched.
	SliceCutsEnumerated int64 `json:"slice_cuts_enumerated"`
	// WitnessLength is the length of the returned witness path (0 when
	// none).
	WitnessLength int `json:"witness_length"`
	// Duration is the wall-clock time of the Detect run.
	Duration time.Duration `json:"duration_ns"`
	// Choice is the Table 1 dispatch decision of the run's first temporal
	// operator (nil for purely boolean/local formulas). Excluded from the
	// JSON form — the slow-detection log flattens the fields it needs.
	Choice *pir.Choice `json:"-"`
}

// choice records the first Table 1 dispatch of the run — the cell the
// slow-detection log attributes a slow run to.
func (s *Stats) choice(c pir.Choice) {
	if s != nil && s.Choice == nil {
		s.Choice = &c
	}
}

func (s *Stats) cuts(n int64) {
	if s != nil {
		s.CutsVisited += n
	}
}

func (s *Stats) evals(n int64) {
	if s != nil {
		s.PredicateEvals += n
	}
}

func (s *Stats) forbidden(n int64) {
	if s != nil {
		s.ForbiddenCalls += n
	}
}

func (s *Stats) advance(n int64) {
	if s != nil {
		s.AdvancementSteps += n
	}
}

func (s *Stats) memo(n int64) {
	if s != nil {
		s.MemoHits += n
	}
}

func (s *Stats) short(n int64) {
	if s != nil {
		s.ShortCircuits += n
	}
}

func (s *Stats) sliceBuild(d time.Duration) {
	if s != nil {
		s.SliceBuild += d
	}
}

func (s *Stats) sliceEvents(kept, eliminated int64) {
	if s != nil {
		s.SliceEventsKept += kept
		s.SliceEventsEliminated += eliminated
	}
}

func (s *Stats) sliceCuts(n int64) {
	if s != nil {
		s.SliceCutsEnumerated += n
	}
}

// merge folds a worker's private counters into s — the join step of the
// parallel runner's batched-publish discipline (hot loops increment plain
// per-worker Stats; only the merge after the join touches shared state).
// Algorithm, WitnessLength and Duration are per-run fields and stay.
func (s *Stats) merge(o *Stats) {
	if s == nil {
		return
	}
	s.CutsVisited += o.CutsVisited
	s.PredicateEvals += o.PredicateEvals
	s.ForbiddenCalls += o.ForbiddenCalls
	s.AdvancementSteps += o.AdvancementSteps
	s.MemoHits += o.MemoHits
	s.ShortCircuits += o.ShortCircuits
	s.SliceBuild += o.SliceBuild
	s.SliceEventsKept += o.SliceEventsKept
	s.SliceEventsEliminated += o.SliceEventsEliminated
	s.SliceCutsEnumerated += o.SliceCutsEnumerated
}

// Engine-wide metrics, fed once per Detect run (batched from the per-run
// Stats, so the per-cut loops never touch an atomic).
var (
	metDetectRuns  = obs.Default().Counter("hb_detect_runs_total", "Detect runs completed")
	metDetectCuts  = obs.Default().Counter("hb_detect_cuts_visited_total", "consistent cuts visited by detection algorithms")
	metDetectEvals = obs.Default().Counter("hb_detect_predicate_evals_total", "predicate evaluations performed by detection algorithms")
	metDetectDur   = obs.Default().Histogram("hb_detect_duration_seconds", "wall-clock duration of Detect runs", nil)
)

func (s *Stats) publish() {
	metDetectRuns.Inc()
	metDetectCuts.Add(s.CutsVisited)
	metDetectEvals.Add(s.PredicateEvals)
	metDetectDur.Observe(s.Duration.Seconds())
}

// tracer, when set, receives one span per top-level Detect run — the
// structured detection trace consumed by hbdetect -trace-jsonl.
var tracer atomic.Pointer[obs.Tracer]

// SetTracer installs (or, with nil, removes) the detection-trace sink.
func SetTracer(t *obs.Tracer) { tracer.Store(t) }

// slowLog, when set, receives one structured record per Detect run whose
// duration crosses the log's threshold: the formula, the Table 1 choice
// that routed it, and the full Stats — enough to aim computation slicing
// at the hot cells without re-running anything.
var slowLog atomic.Pointer[obs.SlowLog]

// SetSlowLog installs (or, with nil, removes) the slow-detection log.
func SetSlowLog(l *obs.SlowLog) { slowLog.Store(l) }

// slowDetection is the JSONL record of one over-threshold Detect run.
type slowDetection struct {
	TS         string `json:"ts"`
	Formula    string `json:"formula"`
	Algorithm  string `json:"algorithm"`
	Holds      bool   `json:"holds"`
	DurationUS int64  `json:"dur_us"`
	// The Table 1 dispatch that routed the run (empty for purely
	// boolean/local formulas).
	Cell       string `json:"cell,omitempty"`
	Complexity string `json:"complexity,omitempty"`
	Reason     string `json:"reason,omitempty"`
	// The run's work counters, cut counts included.
	Stats *Stats `json:"stats"`
}

// emitSlow records the run in the slow-detection log when its duration
// crosses the threshold. One atomic load plus a comparison on the fast
// path; the record is only built for genuinely slow runs.
func emitSlow(formula string, r Result, st *Stats) {
	sl := slowLog.Load()
	if !sl.Exceeds(st.Duration) {
		return
	}
	rec := slowDetection{
		TS:         time.Now().UTC().Format(time.RFC3339Nano),
		Formula:    formula,
		Algorithm:  st.Algorithm,
		Holds:      r.Holds,
		DurationUS: st.Duration.Microseconds(),
		Stats:      st,
	}
	if c := st.Choice; c != nil {
		rec.Cell, rec.Complexity, rec.Reason = c.Cell, c.Complexity, c.Reason
	}
	sl.Record(rec)
}

func emitSpan(formula string, r Result, st *Stats) {
	t := tracer.Load()
	if t == nil {
		return
	}
	sp := t.Start("detect")
	sp.Set("formula", formula)
	sp.Set("algorithm", st.Algorithm)
	sp.Set("holds", r.Holds)
	sp.Set("cuts_visited", st.CutsVisited)
	sp.Set("predicate_evals", st.PredicateEvals)
	sp.Set("forbidden_calls", st.ForbiddenCalls)
	sp.Set("advancement_steps", st.AdvancementSteps)
	sp.Set("memo_hits", st.MemoHits)
	sp.Set("short_circuits", st.ShortCircuits)
	sp.Set("slice_build_ns", int64(st.SliceBuild))
	sp.Set("slice_events_kept", st.SliceEventsKept)
	sp.Set("slice_events_eliminated", st.SliceEventsEliminated)
	sp.Set("slice_cuts_enumerated", st.SliceCutsEnumerated)
	sp.Set("witness_length", st.WitnessLength)
	sp.End()
}

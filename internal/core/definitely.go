package core

import (
	"repro/internal/computation"
	"repro/internal/predicate"
)

// Interval is a maximal run [Lo, Hi] of local states of one process on
// which that process's conjuncts all hold.
type Interval struct {
	Proc   int
	Lo, Hi int
}

// begin returns the event that brings the process into the interval, or
// nil when the interval starts at the initial state (logically -∞).
func (iv Interval) begin(comp *computation.Computation) *computation.Event {
	if iv.Lo == 0 {
		return nil
	}
	return comp.Event(iv.Proc, iv.Lo)
}

// end returns the first event after the interval, or nil when the interval
// extends to the final state (logically +∞).
func (iv Interval) end(comp *computation.Computation) *computation.Event {
	if iv.Hi >= comp.Len(iv.Proc) {
		return nil
	}
	return comp.Event(iv.Proc, iv.Hi+1)
}

// trueIntervals computes, for each process mentioned by the conjunctive
// predicate, the maximal intervals of local states on which all of that
// process's conjuncts hold. Processes not mentioned are omitted: their
// conjunct is vacuously true everywhere and imposes no constraint.
func trueIntervals(comp *computation.Computation, p predicate.Conjunctive, st *Stats) map[int][]Interval {
	byProc := make(map[int][]predicate.LocalPredicate)
	for _, l := range p.Locals {
		byProc[l.Process()] = append(byProc[l.Process()], l)
	}
	out := make(map[int][]Interval, len(byProc))
	for proc, locals := range byProc {
		var ivs []Interval
		inRun, lo := false, 0
		for k := 0; k <= comp.Len(proc); k++ {
			ok := true
			for _, l := range locals {
				st.evals(1)
				if !l.HoldsAt(comp, k) {
					ok = false
					break
				}
			}
			switch {
			case ok && !inRun:
				inRun, lo = true, k
			case !ok && inRun:
				ivs = append(ivs, Interval{proc, lo, k - 1})
				inRun = false
			}
		}
		if inRun {
			ivs = append(ivs, Interval{proc, lo, comp.Len(proc)})
		}
		out[proc] = ivs
	}
	return out
}

// mustOverlap reports the Garg–Waldecker pairwise condition: in every
// interleaving, interval b begins before interval a ends. This holds
// exactly when b's begin event happened-before a's end event (with -∞
// begins and +∞ ends vacuously satisfying it). A selection of intervals,
// one per constrained process, with mustOverlap holding for every ordered
// pair is an unavoidable box: by Helly's theorem on the line, every maximal
// cut sequence passes through a cut lying in all selected intervals at
// once.
func mustOverlap(comp *computation.Computation, a, b Interval) bool {
	beginB := b.begin(comp)
	if beginB == nil {
		return true
	}
	endA := a.end(comp)
	if endA == nil {
		return true
	}
	return comp.HappenedBefore(beginB, endA)
}

// AFConjunctive detects AF(p) — definitely p — for a conjunctive predicate
// p, following Garg and Waldecker's strong conjunctive predicate detection:
// AF(p) holds iff some selection of true-intervals, one per constrained
// process, is an unavoidable box.
//
// The search advances interval candidates monotonically: when the pair
// (a, b) violates mustOverlap, candidate a can never pair with b's current
// or any later interval (same-process begins only move causally later), so
// a is discarded. Each discard is permanent, giving O(|E|) advancements
// with O(n) rechecks each. The returned box is the witness selection when
// AF(p) holds.
func AFConjunctive(comp *computation.Computation, p predicate.Conjunctive) (box []Interval, ok bool) {
	return afConjunctive(comp, p, nil)
}

func afConjunctive(comp *computation.Computation, p predicate.Conjunctive, st *Stats) (box []Interval, ok bool) {
	ivs := trueIntervals(comp, p, st)
	if len(ivs) == 0 {
		return nil, true // empty conjunction holds everywhere
	}
	procs := make([]int, 0, len(ivs))
	for proc, list := range ivs {
		if len(list) == 0 {
			return nil, false // some conjunct never holds: no satisfying cut
		}
		procs = append(procs, proc)
	}
	cand := make(map[int]int, len(procs)) // proc → candidate interval index
	cur := func(proc int) Interval { return ivs[proc][cand[proc]] }

	// Worklist of processes whose pair conditions need (re)checking.
	pending := append([]int(nil), procs...)
	inPending := make(map[int]bool, len(procs))
	for _, proc := range procs {
		inPending[proc] = true
	}
	for len(pending) > 0 {
		i := pending[0]
		pending = pending[1:]
		inPending[i] = false
		advanced := false
		for _, j := range procs {
			if j == i {
				continue
			}
			// Both orientations involving i: i may die against j's begin,
			// or j may die against i's begin.
			victim := -1
			if !mustOverlap(comp, cur(i), cur(j)) {
				victim = i
			} else if !mustOverlap(comp, cur(j), cur(i)) {
				victim = j
			}
			if victim < 0 {
				continue
			}
			st.advance(1)
			cand[victim]++
			if cand[victim] >= len(ivs[victim]) {
				return nil, false
			}
			if !inPending[victim] {
				pending = append(pending, victim)
				inPending[victim] = true
			}
			if victim == i {
				advanced = true
				break // i's candidate changed; re-enqueue and restart its checks
			}
		}
		if advanced && !inPending[i] {
			pending = append(pending, i)
			inPending[i] = true
		}
	}
	box = make([]Interval, 0, len(procs))
	for _, proc := range procs {
		box = append(box, cur(proc))
	}
	return box, true
}

// EGDisjunctive detects EG(q) — controllable q — for a disjunctive
// predicate by the duality EG(q) = ¬AF(¬q), where ¬q is conjunctive.
func EGDisjunctive(comp *computation.Computation, q predicate.Disjunctive) bool {
	_, af := AFConjunctive(comp, q.Negate())
	return !af
}

// (The dispatcher's instrumented duals live in detect.go: detectEG and
// detectAF expand these compositions inline with the run's *Stats.)

// AFDisjunctive detects AF(q) for a disjunctive predicate by the duality
// AF(q) = ¬EG(¬q), with EG of the conjunctive (hence linear) complement
// answered by Algorithm A1.
func AFDisjunctive(comp *computation.Computation, q predicate.Disjunctive) bool {
	_, eg := EGLinear(comp, q.Negate())
	return !eg
}

// AGDisjunctive detects AG(q) for a disjunctive predicate by the duality
// AG(q) = ¬EF(¬q), with EF of the conjunctive complement answered by the
// advancement algorithm.
func AGDisjunctive(comp *computation.Computation, q predicate.Disjunctive) bool {
	return !EFLinear(comp, q.Negate())
}

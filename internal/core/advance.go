// Package core implements the paper's predicate detection algorithms — the
// primary contribution of the reproduction.
//
// Detection answers "does the happened-before model of one computation
// satisfy this CTL formula?" without enumerating the exponential lattice of
// global states. The package provides:
//
//   - EF for linear predicates via the Chase–Garg advancement property,
//   - Algorithm A1: EG for linear predicates, O(n|E|) (Section 5),
//   - Algorithm A2: AG for linear predicates via Birkhoff's
//     meet-irreducible elements, O(n|E|) per check (Section 5),
//   - their duals for post-linear predicates,
//   - EF/AF for observer-independent predicates by a single observation,
//   - AF for conjunctive predicates (Garg–Waldecker strong conjunctive
//     detection), giving EG for disjunctive predicates by duality,
//   - Algorithm A3: E[p U q] for conjunctive p and linear q (Section 7),
//   - A[p U q] for disjunctive p, q via the EG/EU composition (Section 7),
//   - an exponential backtracking solver for arbitrary predicates, used on
//     the NP-complete cells of Table 1,
//   - Detect, a dispatcher that routes a CTL formula to the best algorithm
//     according to the predicate class, mirroring Table 1.
package core

import (
	"repro/internal/computation"
	"repro/internal/predicate"
)

// LeastCut computes I_p, the least consistent cut satisfying the linear
// predicate p, by the Chase–Garg advancement: starting from ∅, while p
// fails, some forbidden process must advance, so the cut grows to include
// that process's next event and its causal closure. Runs in O(n|E|) cut
// updates plus one predicate evaluation per step.
//
// ok is false when no consistent cut satisfies p.
func LeastCut(comp *computation.Computation, p predicate.Linear) (computation.Cut, bool) {
	return leastCut(comp, p, nil)
}

func leastCut(comp *computation.Computation, p predicate.Linear, st *Stats) (computation.Cut, bool) {
	cut := comp.InitialCut()
	// Each iteration adds at least one event, so at most |E|+1 iterations.
	st.cuts(1)
	st.evals(1)
	for !p.Eval(comp, cut) {
		st.forbidden(1)
		i, ok := p.Forbidden(comp, cut)
		if !ok {
			return nil, false // predicate unsatisfiable above cut
		}
		if cut[i] >= comp.Len(i) {
			return nil, false // forbidden process has no more events
		}
		next := comp.Event(i, cut[i]+1)
		// Advance to the least consistent cut containing cut ∪ {next}.
		cut = computation.Join(cut, comp.DownSet(next))
		st.advance(1)
		st.cuts(1)
		st.evals(1)
	}
	return cut, true
}

// GreatestCut is the dual of LeastCut for post-linear predicates: it
// retreats from the final cut E, removing the last event of a retreat
// process and everything that causally depends on it, until p holds.
//
// ok is false when no consistent cut satisfies p.
func GreatestCut(comp *computation.Computation, p predicate.PostLinear) (computation.Cut, bool) {
	return greatestCut(comp, p, nil)
}

func greatestCut(comp *computation.Computation, p predicate.PostLinear, st *Stats) (computation.Cut, bool) {
	cut := comp.FinalCut()
	st.cuts(1)
	st.evals(1)
	for !p.Eval(comp, cut) {
		st.forbidden(1)
		i, ok := p.Retreat(comp, cut)
		if !ok {
			return nil, false
		}
		if cut[i] == 0 {
			return nil, false // retreat process already at its initial state
		}
		last := comp.Event(i, cut[i])
		// Remove last and its causal up-set: the greatest consistent cut
		// below cut excluding last is cut ⊓ (E − ↑last).
		cut = computation.Meet(cut, comp.UpSetComplement(last))
		st.advance(1)
		st.cuts(1)
		st.evals(1)
	}
	return cut, true
}

// EFLinear detects EF(p) — possibly p — for a linear predicate: the
// satisfying cuts form an inf-semilattice, so EF(p) holds exactly when
// LeastCut finds I_p.
func EFLinear(comp *computation.Computation, p predicate.Linear) bool {
	_, ok := LeastCut(comp, p)
	return ok
}

// EFPostLinear detects EF(p) for a post-linear predicate via GreatestCut.
func EFPostLinear(comp *computation.Computation, p predicate.PostLinear) bool {
	_, ok := GreatestCut(comp, p)
	return ok
}

// EFDisjunctive detects EF(p) for a disjunctive predicate in O(|E|) local
// predicate evaluations: some consistent cut satisfies ∨ l_i exactly when
// some local state of some process satisfies its local predicate, because
// every local state is exposed by at least one consistent cut (e.g. the
// down-set of the state's last event joined with nothing else).
func EFDisjunctive(comp *computation.Computation, p predicate.Disjunctive) bool {
	return efDisjunctive(comp, p, nil)
}

func efDisjunctive(comp *computation.Computation, p predicate.Disjunctive, st *Stats) bool {
	for _, l := range p.Locals {
		proc := l.Process()
		for k := 0; k <= comp.Len(proc); k++ {
			st.evals(1)
			if l.HoldsAt(comp, k) {
				return true
			}
		}
	}
	return false
}

// EFStable detects EF(p) for a stable predicate: once true p stays true, so
// it holds somewhere iff it holds at the final cut (Chandy–Lamport).
func EFStable(comp *computation.Computation, p predicate.Stable) bool {
	return efStable(comp, p, nil)
}

func efStable(comp *computation.Computation, p predicate.Stable, st *Stats) bool {
	st.cuts(1)
	st.evals(1)
	return p.Eval(comp, comp.FinalCut())
}

// AFStable detects AF(p) for a stable predicate; stable predicates are
// observer-independent, so definitely coincides with possibly.
func AFStable(comp *computation.Computation, p predicate.Stable) bool {
	return EFStable(comp, p)
}

// EGStable detects EG(p) for a stable predicate: a controllable stable
// predicate must hold at ∅ (every path starts there), and if it holds at ∅
// stability keeps it true along every path. The paper's Table 1 marks this
// cell "trivial".
func EGStable(comp *computation.Computation, p predicate.Stable) bool {
	return egStable(comp, p, nil)
}

func egStable(comp *computation.Computation, p predicate.Stable, st *Stats) bool {
	st.cuts(1)
	st.evals(1)
	return p.Eval(comp, comp.InitialCut())
}

// AGStable detects AG(p) for a stable predicate, which coincides with
// EGStable by the same argument.
func AGStable(comp *computation.Computation, p predicate.Stable) bool {
	return EGStable(comp, p)
}

// DetectObserverIndependent detects EF(p) — equivalently AF(p) — for an
// observer-independent predicate by walking a single observation (any
// maximal consistent cut sequence) and evaluating p at each of its |E|+1
// cuts, following Charron-Bost, Delporte-Gallet and Fauconnier.
func DetectObserverIndependent(comp *computation.Computation, p predicate.Predicate) bool {
	return detectObserverIndependent(comp, p, nil)
}

func detectObserverIndependent(comp *computation.Computation, p predicate.Predicate, st *Stats) bool {
	for _, cut := range comp.SomeLinearization() {
		st.cuts(1)
		st.evals(1)
		if p.Eval(comp, cut) {
			return true
		}
	}
	return false
}

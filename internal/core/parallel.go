package core

// Parallel execution layer for the sweep-shaped detection algorithms.
//
// The paper's cheapest algorithms are embarrassingly parallel over
// independent sub-problems: Algorithm A2 evaluates the predicate at |E|
// meet-irreducible cuts that depend only on one event each, its dual scans
// the |E| join-irreducible cuts, and step 2 of Algorithm A3 runs an
// independent EG check on each frontier sub-computation of I_q. This file
// shards those sweeps over a small worker pool, bounded by GOMAXPROCS by
// default, while keeping every observable output — verdict, witness or
// counterexample cut, and Stats totals — bit-identical to the sequential
// algorithms at every worker count.
//
// Determinism rule: every sweep has a canonical sequential order (events
// by process then position; frontier branches by process). The runner
// returns the hit with the LOWEST index in that order, which is exactly
// where the sequential left-to-right sweep would have stopped. Early
// cancellation uses a shared atomic upper bound holding the best (lowest)
// hit index found so far: workers abandon indices at or above the bound,
// but always finish indices below it, so the minimum is exact and does not
// depend on worker count or goroutine scheduling.
//
// Stats discipline: workers never touch a shared Stats (the hot loops stay
// atomic-free). Sub-problem runs collect into per-worker Stats values that
// are merged after the join — and only the sub-problems the sequential
// sweep would have executed (indices up to and including the winning hit)
// are merged, so the published totals are deterministic and equal the
// sequential run's. Work performed above the winning index during the
// cancellation window is deliberately not counted: it is scheduling noise,
// and counting it would make Stats depend on worker count.

import (
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/computation"
	"repro/internal/ctl"
	"repro/internal/predicate"
)

// normWorkers resolves a worker-count request: non-positive means "as many
// as the hardware allows" (GOMAXPROCS).
func normWorkers(workers int) int {
	if workers <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return workers
}

// flatEvents returns every event in the canonical sweep order of the
// irreducible-cut algorithms — by process, then by position. The index
// into this slice is the determinism key of the parallel sweeps.
func flatEvents(comp *computation.Computation) []*computation.Event {
	out := make([]*computation.Event, 0, comp.TotalEvents())
	for i := 0; i < comp.N(); i++ {
		out = append(out, comp.Events(i)...)
	}
	return out
}

// sweepFirst is the worker-pool runner behind the parallel sweeps: it
// searches [0, total) for the lowest index whose probe reports a hit,
// sharding the range over at most workers goroutines in contiguous blocks.
// probe must be safe for concurrent calls on distinct indices; each index
// is probed by exactly one worker. It returns total when no probe hits.
func sweepFirst(total, workers int, probe func(idx int) bool) int {
	if workers > total {
		workers = total
	}
	if workers <= 1 {
		for i := 0; i < total; i++ {
			if probe(i) {
				return i
			}
		}
		return total
	}
	// bound is the lowest hit index found so far; indices at or above it
	// cannot win, so workers skip them — the cancellation signal.
	var bound atomic.Int64
	bound.Store(int64(total))
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo, hi := w*total/workers, (w+1)*total/workers
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				if int64(i) >= bound.Load() {
					return
				}
				if !probe(i) {
					continue
				}
				// CAS-min: lower hits always win, racing higher ones lose.
				for {
					cur := bound.Load()
					if int64(i) >= cur || bound.CompareAndSwap(cur, int64(i)) {
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	return int(bound.Load())
}

// blockFill runs fill over [0, total) sharded in contiguous blocks across
// at most workers goroutines — the batch-construction counterpart of
// sweepFirst (no early exit, every index runs exactly once).
func blockFill(total, workers int, fill func(idx int)) {
	if workers > total {
		workers = total
	}
	if workers <= 1 {
		for i := 0; i < total; i++ {
			fill(i)
		}
		return
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo, hi := w*total/workers, (w+1)*total/workers
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				fill(i)
			}
		}()
	}
	wg.Wait()
}

// DetectParallel is Detect with a parallel execution budget: the
// sweep-shaped algorithms (A2 and its dual, A3 step 2, the AU composition
// through A3) shard their independent sub-problems over up to workers
// goroutines. workers <= 0 means GOMAXPROCS; 1 is exactly Detect. The
// verdict, witness or counterexample, and Stats totals are identical to
// Detect at every worker count (see the determinism rule above).
func DetectParallel(comp *computation.Computation, f ctl.Formula, workers int) (Result, error) {
	return runDetect(comp, f, normWorkers(workers))
}

// AGLinearParallel is Algorithm A2 with the |E| meet-irreducible cuts
// sharded over up to workers goroutines (<= 0 means GOMAXPROCS). The
// returned counterexample is the one AGLinear returns: the first failing
// cut in the canonical event order.
func AGLinearParallel(comp *computation.Computation, p predicate.Predicate, workers int) (counterexample computation.Cut, ok bool) {
	return agLinearParallel(comp, p, nil, normWorkers(workers))
}

func agLinearParallel(comp *computation.Computation, p predicate.Predicate, st *Stats, workers int) (counterexample computation.Cut, ok bool) {
	if workers <= 1 {
		return agLinear(comp, p, st)
	}
	final := comp.FinalCut()
	if !p.Eval(comp, final) {
		st.cuts(1)
		st.evals(1)
		return final, false
	}
	evs := flatEvents(comp)
	hits := make([]computation.Cut, len(evs))
	k := sweepFirst(len(evs), workers, func(i int) bool {
		m := comp.UpSetComplement(evs[i])
		if p.Eval(comp, m) {
			return false
		}
		hits[i] = m
		return true
	})
	if k < len(evs) {
		// Determinized accounting: the final cut plus irreducibles 0..k —
		// exactly the sequential sweep's work, independent of worker count.
		st.cuts(int64(k) + 2)
		st.evals(int64(k) + 2)
		return hits[k], false
	}
	st.cuts(int64(len(evs)) + 1)
	st.evals(int64(len(evs)) + 1)
	return nil, true
}

// AGPostLinearParallel is the dual of AGLinearParallel: the |E|
// join-irreducible cuts ↓e sharded over up to workers goroutines.
func AGPostLinearParallel(comp *computation.Computation, p predicate.Predicate, workers int) (counterexample computation.Cut, ok bool) {
	return agPostLinearParallel(comp, p, nil, normWorkers(workers))
}

func agPostLinearParallel(comp *computation.Computation, p predicate.Predicate, st *Stats, workers int) (counterexample computation.Cut, ok bool) {
	if workers <= 1 {
		return agPostLinear(comp, p, st)
	}
	initial := comp.InitialCut()
	if !p.Eval(comp, initial) {
		st.cuts(1)
		st.evals(1)
		return initial, false
	}
	evs := flatEvents(comp)
	hits := make([]computation.Cut, len(evs))
	k := sweepFirst(len(evs), workers, func(i int) bool {
		j := comp.DownSet(evs[i])
		if p.Eval(comp, j) {
			return false
		}
		hits[i] = j
		return true
	})
	if k < len(evs) {
		st.cuts(int64(k) + 2)
		st.evals(int64(k) + 2)
		return hits[k], false
	}
	st.cuts(int64(len(evs)) + 1)
	st.evals(int64(len(evs)) + 1)
	return nil, true
}

// EUConjLinearParallel is Algorithm A3 with step 2's per-frontier-event EG
// checks running concurrently (<= 0 workers means GOMAXPROCS). Step 1 (the
// advancement to I_q) is inherently sequential and stays so. The witness
// is the one EUConjLinear returns: the EG path through the first
// succeeding frontier branch in process order.
func EUConjLinearParallel(comp *computation.Computation, p predicate.Conjunctive, q predicate.Linear, workers int) (path []computation.Cut, ok bool) {
	return euConjLinearParallel(comp, p, q, nil, normWorkers(workers))
}

func euConjLinearParallel(comp *computation.Computation, p predicate.Conjunctive, q predicate.Linear, st *Stats, workers int) (path []computation.Cut, ok bool) {
	if workers <= 1 {
		return euConjLinear(comp, p, q, st)
	}
	// Step 1: find I_q (sequential; shares st with the caller directly).
	iq, ok := leastCut(comp, q, st)
	if !ok {
		return nil, false
	}
	if iq.Equal(comp.InitialCut()) {
		return []computation.Cut{iq}, true
	}
	// Step 2: the frontier sub-computations, in the sequential branch
	// order. Prefixes share storage with comp; the branches below only
	// read them (the -race cross-validation matrix pins this).
	var subs []*computation.Computation
	for i := range iq {
		if !comp.MaximalEvent(iq, i) {
			continue
		}
		g := iq.Copy()
		g[i]--
		subs = append(subs, comp.Prefix(g))
	}
	paths := make([][]computation.Cut, len(subs))
	stats := make([]Stats, len(subs))
	k := sweepFirst(len(subs), workers, func(b int) bool {
		egPath, holds := egLinear(subs[b], p, &stats[b])
		paths[b] = egPath
		return holds
	})
	// Merge the per-branch stats the sequential run would have produced:
	// branches strictly below the winner always run to completion (the
	// bound can never drop below a losing branch's index), so their
	// counters are complete.
	last := k
	if last >= len(subs) {
		last = len(subs) - 1
	}
	for b := 0; b <= last; b++ {
		st.merge(&stats[b])
	}
	if k >= len(subs) {
		return nil, false
	}
	full := make([]computation.Cut, 0, len(paths[k])+1)
	for _, c := range paths[k] {
		full = append(full, c.Copy())
	}
	return append(full, iq), true
}

// MeetIrreduciblesParallel constructs the meet-irreducible cuts E − ↑e in
// the same order as MeetIrreducibles, with the per-event Birkhoff formula
// evaluated across up to workers goroutines (<= 0 means GOMAXPROCS).
func MeetIrreduciblesParallel(comp *computation.Computation, workers int) []computation.Cut {
	evs := flatEvents(comp)
	if len(evs) == 0 {
		return nil
	}
	out := make([]computation.Cut, len(evs))
	blockFill(len(evs), normWorkers(workers), func(i int) {
		out[i] = comp.UpSetComplement(evs[i])
	})
	return out
}

// JoinIrreduciblesParallel constructs the join-irreducible cuts ↓e in the
// same order as JoinIrreducibles across up to workers goroutines.
func JoinIrreduciblesParallel(comp *computation.Computation, workers int) []computation.Cut {
	evs := flatEvents(comp)
	if len(evs) == 0 {
		return nil
	}
	out := make([]computation.Cut, len(evs))
	blockFill(len(evs), normWorkers(workers), func(i int) {
		out[i] = comp.DownSet(evs[i])
	})
	return out
}

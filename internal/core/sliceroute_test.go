package core

import (
	"math/rand"
	"testing"

	"repro/internal/computation"
	"repro/internal/ctl"
	"repro/internal/pir"
	"repro/internal/predicate"
	"repro/internal/sim"
)

// This file is the slice-routing property test: random regular-class
// formulas (a conjunctive factor ∧ an arbitrary remainder, under EF or
// negated under AG) must route through KindSliceFactor, and the sliced
// verdict, evidence, and determining prefix must be bit-identical to the
// unsliced exponential solver and to brute-force lattice enumeration.

// randomSliceConj builds a random conjunctive factor over comp's variables.
func randomSliceConj(rng *rand.Rand, comp *computation.Computation) predicate.Conjunctive {
	var locals []predicate.LocalPredicate
	for n := 1 + rng.Intn(2); n > 0; n-- {
		proc := rng.Intn(comp.N())
		vars := comp.Vars(proc)
		if len(vars) == 0 {
			continue
		}
		ops := []predicate.Op{predicate.LT, predicate.LE, predicate.NE, predicate.GE}
		locals = append(locals, predicate.VarCmp{
			Proc: proc,
			Var:  vars[rng.Intn(len(vars))],
			Op:   ops[rng.Intn(len(ops))],
			K:    rng.Intn(3),
		})
	}
	if len(locals) == 0 {
		locals = append(locals, predicate.VarCmp{Proc: 0, Var: "x0", Op: predicate.GE, K: 0})
	}
	return predicate.Conjunctive{Locals: locals}
}

// randomSliceRemainder builds a genuinely arbitrary (non-monotone,
// class-free) remainder: the XOR of two cut-coordinate threshold tests.
func randomSliceRemainder(rng *rand.Rand, comp *computation.Computation) predicate.Predicate {
	i, j := rng.Intn(comp.N()), rng.Intn(comp.N())
	ki, kj := rng.Intn(comp.Len(i)+1), rng.Intn(comp.Len(j)+1)
	return predicate.Fn{Name: "xorDepth", F: func(_ *computation.Computation, cut computation.Cut) bool {
		return (cut[i] >= ki) != (cut[j] >= kj)
	}}
}

// linearization returns a chain of cuts ∅ = c_0 < c_1 < … < c_|E| = E,
// one event at a time, for prefix-by-prefix determining-prefix checks.
func linearization(comp *computation.Computation) []computation.Cut {
	cur := comp.InitialCut()
	chain := []computation.Cut{cur.Copy()}
	for e := 0; e < comp.TotalEvents(); e++ {
		for i := range cur {
			if comp.EnabledEvent(cur, i) {
				cur[i]++
				chain = append(chain, cur.Copy())
				break
			}
		}
	}
	return chain
}

func TestSliceRoutedDetectMatchesUnsliced(t *testing.T) {
	rng := rand.New(rand.NewSource(909))
	routed := 0
	for trial := 0; trial < 160; trial++ {
		cfg := sim.RandomConfig{
			Procs:    2 + rng.Intn(2),
			Events:   6 + rng.Intn(4),
			SendProb: rng.Float64() * 0.5,
			RecvProb: 0.6,
			Vars:     1 + rng.Intn(2),
			ValRange: 3,
		}
		comp := sim.Random(cfg, rng.Int63())
		whole := predicate.And{Ps: []predicate.Predicate{
			randomSliceConj(rng, comp),
			randomSliceRemainder(rng, comp),
		}}
		useEF := trial%2 == 0

		// Routing: the compiled predicate must land in the slice-factor
		// cell with an affirmative, machine-readable plan.
		var f ctl.Formula
		var c pir.Choice
		if useEF {
			f = ctl.EF{F: ctl.Atom{P: whole}}
			pr, err := pir.Compile(ctl.Atom{P: whole})
			if err != nil {
				t.Fatal(err)
			}
			c = pir.Choose(pir.OpEF, pr)
		} else {
			f = ctl.AG{F: ctl.Not{F: ctl.Atom{P: whole}}}
			pr, err := pir.Compile(ctl.Not{F: ctl.Atom{P: whole}})
			if err != nil {
				t.Fatal(err)
			}
			c = pir.Choose(pir.OpAG, pr)
		}
		if c.Kind != pir.KindSliceFactor || !c.Slice.Sliced {
			t.Fatalf("trial %d: %s routed to %q (slice plan %s), want KindSliceFactor",
				trial, f, c.Cell, c.Slice)
		}
		routed++

		// Verdict: sliced Detect vs. the unsliced exponential solver vs.
		// brute-force lattice enumeration.
		res, err := Detect(comp, f)
		if err != nil {
			t.Fatalf("trial %d: Detect(%s): %v", trial, f, err)
		}
		wantEF := EFArbitrary(comp, whole)
		want := wantEF
		if !useEF {
			want = !wantEF
		}
		if res.Holds != want {
			t.Fatalf("trial %d: sliced Detect(%s) = %v via %q, unsliced solver says %v",
				trial, f, res.Holds, res.Algorithm, want)
		}
		if lw := evalTop(latticeOf(t, comp), f); res.Holds != lw {
			t.Fatalf("trial %d: sliced Detect(%s) = %v, lattice enumeration says %v",
				trial, f, res.Holds, lw)
		}

		// Evidence: the unsliced exponential cell returns a bare verdict
		// (no witness, no counterexample); the sliced path must match
		// bit for bit.
		if res.Witness != nil || res.Counterexample != nil {
			t.Fatalf("trial %d: sliced Detect(%s) attached evidence (witness %v, cex %v); unsliced path returns none",
				trial, f, res.Witness, res.Counterexample)
		}
		if res.Stats.SliceBuild <= 0 {
			t.Fatalf("trial %d: slice-routed run recorded no slice build time", trial)
		}

		// Determining prefix: along one linearization, the first prefix on
		// which the verdict latches must agree with the unsliced solver.
		if trial%8 == 0 {
			for _, cut := range linearization(comp) {
				pre := comp.Prefix(cut)
				preRes, err := Detect(pre, f)
				if err != nil {
					t.Fatalf("trial %d prefix %v: %v", trial, cut, err)
				}
				preWant := EFArbitrary(pre, whole)
				if !useEF {
					preWant = !preWant
				}
				if preRes.Holds != preWant {
					t.Fatalf("trial %d prefix %v: sliced %v, unsliced %v — determining prefixes diverge",
						trial, cut, preRes.Holds, preWant)
				}
			}
		}
	}
	if routed < 150 {
		t.Fatalf("only %d slice-routed formulas exercised, want >= 150", routed)
	}
}

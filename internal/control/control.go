// Package control implements predicate control in the style of Tarafdar
// and Garg ("Predicate control for active debugging of distributed
// programs", SPDP 1998) — the work the paper's *controllable* (EG)
// operator is named after.
//
// EG(p) asks whether SOME execution consistent with the observed
// computation maintains p everywhere. Predicate control turns that
// existential answer into an enforcement: it synthesizes additional
// synchronizations (causal orderings) such that EVERY execution of the
// controlled computation maintains p — i.e. AG(p) holds after control.
// The predicate is controllable exactly when EG(p) holds, which Algorithm
// A1 decides in polynomial time for linear predicates; the witness path it
// produces induces the control strategy.
//
// Synchronizations are materialized as control messages (a send appended
// right after the earlier event, a receive right before the later event),
// so the controlled computation is again a plain happened-before model
// that every algorithm in this module — and the explicit-lattice ground
// truth — can check.
package control

import (
	"fmt"
	"sort"

	"repro/internal/computation"
	"repro/internal/core"
	"repro/internal/predicate"
)

// Sync is one synthesized synchronization: event (AfterProc, AfterIndex)
// must causally precede event (BeforeProc, BeforeIndex). Indices are
// 1-based, as in computation.Event.
type Sync struct {
	AfterProc, AfterIndex   int
	BeforeProc, BeforeIndex int
}

// String implements fmt.Stringer.
func (s Sync) String() string {
	return fmt.Sprintf("P%d:%d → P%d:%d", s.AfterProc+1, s.AfterIndex, s.BeforeProc+1, s.BeforeIndex)
}

// Synthesize decides whether p is controllable on comp (EG(p), Algorithm
// A1) and, if so, returns synchronizations that force every execution of
// the controlled computation to maintain p. The raw strategy is the chain
// of the A1 witness; orderings already implied by the computation or by
// transitivity through other synchronizations are pruned.
//
// p must depend only on per-process variable state (e.g. conjunctive
// predicates over VarCmp locals): control messages add channel traffic, so
// channel predicates change meaning under control.
func Synthesize(comp *computation.Computation, p predicate.Linear) ([]Sync, bool) {
	path, ok := core.EGLinear(comp, p)
	if !ok {
		return nil, false
	}
	// The event executed at each step of the witness.
	events := make([]*computation.Event, 0, len(path)-1)
	for t := 1; t < len(path); t++ {
		for i := range path[t] {
			if path[t][i] > path[t-1][i] {
				events = append(events, comp.Event(i, path[t][i]))
				break
			}
		}
	}
	// Chain synchronizations between consecutive events, skipping pairs
	// already ordered by the computation itself. The full chain makes
	// every execution follow the witness order, so AG(p) holds under it.
	var raw []Sync
	for t := 0; t+1 < len(events); t++ {
		a, b := events[t], events[t+1]
		if a.Proc == b.Proc || comp.HappenedBefore(a, b) {
			continue
		}
		raw = append(raw, Sync{a.Proc, a.Index, b.Proc, b.Index})
	}
	return prune(comp, p, raw), true
}

// prune greedily minimizes the strategy against its actual guarantee:
// an edge is dropped when AG(p) still holds on the computation controlled
// by the remaining edges (verified with Algorithm A2, so each attempt is
// polynomial). The result is minimal in the sense that removing any single
// remaining edge breaks the invariant.
func prune(comp *computation.Computation, p predicate.Linear, raw []Sync) []Sync {
	kept := append([]Sync(nil), raw...)
	for i := len(kept) - 1; i >= 0; i-- {
		candidate := append(append([]Sync(nil), kept[:i]...), kept[i+1:]...)
		controlled, err := Apply(comp, candidate)
		if err != nil {
			continue
		}
		if _, ok := core.AGLinear(controlled, p); ok {
			kept = candidate
		}
	}
	return kept
}

// Apply materializes the synchronizations as control messages, returning
// the controlled computation: for each sync the After process sends a
// control message immediately after its event and the Before process
// receives it immediately before its event. Variable valuations are
// preserved (control events assign nothing). It returns an error if the
// synchronizations are cyclic (cannot happen for Synthesize output).
func Apply(comp *computation.Computation, syncs []Sync) (*computation.Computation, error) {
	n := comp.N()
	b := computation.NewBuilder(n)
	for i := 0; i < n; i++ {
		for _, name := range comp.Vars(i) {
			if v, ok := comp.Value(i, 0, name); ok && v != 0 {
				b.SetInitial(i, name, v)
			}
		}
	}
	// Per-process schedules: original events interleaved with control
	// items. sendAfter[i][k] lists syncs whose send attaches after event
	// (i,k); recvBefore[j][l] lists syncs whose receive attaches before
	// event (j,l).
	sendAfter := make(map[[2]int][]int)
	recvBefore := make(map[[2]int][]int)
	for si, s := range syncs {
		if s.AfterProc < 0 || s.AfterProc >= n || s.AfterIndex < 1 || s.AfterIndex > comp.Len(s.AfterProc) {
			return nil, fmt.Errorf("control: sync %v references a missing event", s)
		}
		if s.BeforeProc < 0 || s.BeforeProc >= n || s.BeforeIndex < 1 || s.BeforeIndex > comp.Len(s.BeforeProc) {
			return nil, fmt.Errorf("control: sync %v references a missing event", s)
		}
		sendAfter[[2]int{s.AfterProc, s.AfterIndex}] = append(sendAfter[[2]int{s.AfterProc, s.AfterIndex}], si)
		recvBefore[[2]int{s.BeforeProc, s.BeforeIndex}] = append(recvBefore[[2]int{s.BeforeProc, s.BeforeIndex}], si)
	}
	// Per-process item schedules: for each original event, first the due
	// control receives, then the event, then the attached control sends.
	type item struct {
		kind string // "orig", "ctlSend", "ctlRecv"
		k    int    // original event index for "orig"
		si   int    // sync index for control items
	}
	items := make([][]item, n)
	for i := 0; i < n; i++ {
		for k := 1; k <= comp.Len(i); k++ {
			for _, si := range recvBefore[[2]int{i, k}] {
				items[i] = append(items[i], item{kind: "ctlRecv", si: si})
			}
			items[i] = append(items[i], item{kind: "orig", k: k})
			for _, si := range sendAfter[[2]int{i, k}] {
				items[i] = append(items[i], item{kind: "ctlSend", si: si})
			}
		}
	}
	// Ready-list replay.
	ptr := make([]int, n)
	ctrlMsgs := make(map[int]computation.Msg, len(syncs))
	origMsgs := make(map[int]computation.Msg)
	total := comp.TotalEvents() + 2*len(syncs)
	for built := 0; built < total; {
		progressed := false
		for i := 0; i < n; i++ {
			if ptr[i] >= len(items[i]) {
				continue
			}
			it := items[i][ptr[i]]
			switch it.kind {
			case "ctlRecv":
				m, sent := ctrlMsgs[it.si]
				if !sent {
					continue
				}
				ev := b.Receive(i, m)
				ev.Label = fmt.Sprintf("ctl%d", it.si)
			case "ctlSend":
				ev, m := b.Send(i)
				ev.Label = fmt.Sprintf("ctl%d", it.si)
				ctrlMsgs[it.si] = m
			case "orig":
				e := comp.Event(i, it.k)
				var ne *computation.Event
				switch e.Kind {
				case computation.Internal:
					ne = b.Internal(i)
				case computation.Send:
					var m computation.Msg
					ne, m = b.Send(i)
					origMsgs[e.Msg] = m
				case computation.Receive:
					m, sent := origMsgs[e.Msg]
					if !sent {
						continue
					}
					ne = b.Receive(i, m)
				}
				ne.Label = e.Label
				for name, v := range e.Sets {
					computation.Set(ne, name, v)
				}
			}
			ptr[i]++
			built++
			progressed = true
		}
		if !progressed {
			return nil, fmt.Errorf("control: synchronizations are cyclic (deadlock after %d of %d events)", built, total)
		}
	}
	out, err := b.Build()
	if err != nil {
		return nil, fmt.Errorf("control: %w", err)
	}
	return out, nil
}

// Controlled runs the whole pipeline: decide controllability, synthesize,
// apply, and return the controlled computation together with the
// synchronizations. ok is false when EG(p) does not hold.
func Controlled(comp *computation.Computation, p predicate.Linear) (*computation.Computation, []Sync, bool) {
	syncs, ok := Synthesize(comp, p)
	if !ok {
		return nil, nil, false
	}
	controlled, err := Apply(comp, syncs)
	if err != nil {
		// Synthesize output is acyclic by construction; an error here is a
		// bug, surface it loudly.
		panic(err)
	}
	return controlled, syncs, true
}

// SortSyncs orders synchronizations deterministically for display.
func SortSyncs(syncs []Sync) {
	sort.Slice(syncs, func(a, b int) bool {
		x, y := syncs[a], syncs[b]
		if x.AfterProc != y.AfterProc {
			return x.AfterProc < y.AfterProc
		}
		if x.AfterIndex != y.AfterIndex {
			return x.AfterIndex < y.AfterIndex
		}
		if x.BeforeProc != y.BeforeProc {
			return x.BeforeProc < y.BeforeProc
		}
		return x.BeforeIndex < y.BeforeIndex
	})
}

package control

import (
	"testing"

	"repro/internal/computation"
	"repro/internal/core"
	"repro/internal/ctl"
	"repro/internal/explore"
	"repro/internal/lattice"
	"repro/internal/predicate"
	"repro/internal/sim"
)

// varConj builds a conjunctive predicate over each process's first
// variable being ≤ 2 — variable-only, as control requires.
func varConj(comp *computation.Computation) (predicate.Conjunctive, bool) {
	var locals []predicate.LocalPredicate
	for i := 0; i < comp.N(); i++ {
		vars := comp.Vars(i)
		if len(vars) == 0 {
			continue
		}
		locals = append(locals, predicate.VarCmp{Proc: i, Var: vars[0], Op: predicate.LE, K: 2})
	}
	return predicate.Conjunctive{Locals: locals}, len(locals) > 0
}

func TestControlledMakesInvariant(t *testing.T) {
	controllable, total := 0, 0
	for seed := int64(0); seed < 40; seed++ {
		comp := sim.Random(sim.DefaultRandomConfig(3, 12), seed)
		p, ok := varConj(comp)
		if !ok {
			continue
		}
		total++
		controlled, syncs, egHolds := Controlled(comp, p)
		if _, a1 := core.EGLinear(comp, p); egHolds != a1 {
			t.Fatalf("seed %d: Controlled ok=%v but A1 says %v", seed, egHolds, a1)
		}
		if !egHolds {
			continue
		}
		controllable++
		// The paper's guarantee: after control, the invariant holds.
		if cex, ok := core.AGLinear(controlled, p); !ok {
			t.Fatalf("seed %d: AG fails on controlled computation at %v (syncs %v)",
				seed, cex, syncs)
		}
		// Ground truth on the explicit lattice of the controlled trace.
		l, err := lattice.Build(controlled)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !explore.Holds(l, ctl.AG{F: ctl.Atom{P: p}}) {
			t.Fatalf("seed %d: lattice AG fails on controlled computation", seed)
		}
		// Structure checks: original events preserved with valuations.
		if controlled.TotalEvents() != comp.TotalEvents()+2*len(syncs) {
			t.Fatalf("seed %d: controlled has %d events, want %d + 2·%d",
				seed, controlled.TotalEvents(), comp.TotalEvents(), len(syncs))
		}
	}
	if controllable == 0 {
		t.Fatal("no controllable instance in the battery; the test proves nothing")
	}
	t.Logf("controlled %d/%d instances", controllable, total)
}

func TestSynthesizeUncontrollable(t *testing.T) {
	// x flips to 3 (> 2) at the end of P1: the final cut violates p, so
	// EG(p) fails and no control exists.
	b := computation.NewBuilder(2)
	computation.Set(b.Internal(0), "x", 3)
	b.Internal(1)
	comp := b.MustBuild()
	p := predicate.Conj(predicate.VarCmp{Proc: 0, Var: "x", Op: predicate.LE, K: 2})
	if _, ok := Synthesize(comp, p); ok {
		t.Fatal("uncontrollable predicate reported controllable")
	}
	if _, _, ok := Controlled(comp, p); ok {
		t.Fatal("Controlled succeeded on uncontrollable predicate")
	}
}

// TestControlForcesOrder exercises a genuine EG ∧ ¬AG separation. Note a
// small theorem embedded here: for conjunctive predicates over per-process
// variables EG ⟺ AG always (every path visits every local state, so a
// violating local state kills both; with none, every cut satisfies p).
// Real separations need cross-process relational predicates — here the
// classic monotone "y ≥ x" (acknowledgements never trail requests).
func TestControlForcesOrder(t *testing.T) {
	// P1 increments x twice; P2 increments y twice; fully concurrent.
	b := computation.NewBuilder(2)
	computation.Set(b.Internal(0), "x", 1)
	computation.Set(b.Internal(0), "x", 2)
	computation.Set(b.Internal(1), "y", 1)
	computation.Set(b.Internal(1), "y", 2)
	comp := b.MustBuild()
	p := predicate.MonotoneGE{ProcY: 1, VarY: "y", ProcX: 0, VarX: "x"}

	// Sanity: p really is linear on this computation.
	l, err := lattice.Build(comp)
	if err != nil {
		t.Fatal(err)
	}
	if ok, a, bcut := l.CheckLinear(p); !ok {
		t.Fatalf("y≥x not linear: meet(%v, %v)", a, bcut)
	}
	if _, eg := core.EGLinear(comp, p); !eg {
		t.Fatal("EG(y≥x) must hold: schedule y ahead of x")
	}
	if _, ag := core.AGLinear(comp, p); ag {
		t.Fatal("AG(y≥x) must fail uncontrolled: x can run ahead")
	}

	controlled, syncs, ok := Controlled(comp, p)
	if !ok {
		t.Fatal("Controlled failed on a controllable predicate")
	}
	if len(syncs) == 0 {
		t.Fatal("EG∧¬AG but no synchronizations synthesized")
	}
	if cex, agAfter := core.AGLinear(controlled, p); !agAfter {
		t.Fatalf("control did not enforce the invariant (cex %v, syncs %v)", cex, syncs)
	}
	lc, err := lattice.Build(controlled)
	if err != nil {
		t.Fatal(err)
	}
	if !explore.Holds(lc, ctl.AG{F: ctl.Atom{P: p}}) {
		t.Fatal("lattice AG fails on controlled computation")
	}
	// The synthesized strategy follows the A1 witness (y1 y2 x1 x2) and
	// prunes to the single ordering that already enforces the chain:
	// P2:2 → P1:1 (both y-increments before any x-increment).
	SortSyncs(syncs)
	want := []Sync{{1, 2, 0, 1}}
	if len(syncs) != len(want) || syncs[0] != want[0] {
		t.Fatalf("syncs = %v, want %v", syncs, want)
	}
}

// TestConjunctiveEGEqualsAG pins the little theorem above.
func TestConjunctiveEGEqualsAG(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		c := sim.Random(sim.DefaultRandomConfig(3, 12), seed)
		p, ok := varConj(c)
		if !ok {
			continue
		}
		_, eg := core.EGLinear(c, p)
		_, ag := core.AGLinear(c, p)
		if eg != ag {
			t.Fatalf("seed %d: EG=%v AG=%v for a per-process conjunctive predicate", seed, eg, ag)
		}
	}
}

func TestApplyErrors(t *testing.T) {
	comp := sim.Fig2()
	if _, err := Apply(comp, []Sync{{AfterProc: 0, AfterIndex: 99, BeforeProc: 1, BeforeIndex: 1}}); err == nil {
		t.Error("missing event accepted")
	}
	if _, err := Apply(comp, []Sync{{AfterProc: 9, AfterIndex: 1, BeforeProc: 1, BeforeIndex: 1}}); err == nil {
		t.Error("missing process accepted")
	}
	// A cyclic pair of synchronizations deadlocks.
	b := computation.NewBuilder(2)
	b.Internal(0)
	b.Internal(1)
	c2 := b.MustBuild()
	cyclic := []Sync{
		{AfterProc: 0, AfterIndex: 1, BeforeProc: 1, BeforeIndex: 1},
		{AfterProc: 1, AfterIndex: 1, BeforeProc: 0, BeforeIndex: 1},
	}
	if _, err := Apply(c2, cyclic); err == nil {
		t.Error("cyclic synchronizations accepted")
	}
}

func TestApplyPreservesValuations(t *testing.T) {
	comp := sim.Fig4()
	syncs := []Sync{{AfterProc: 2, AfterIndex: 1, BeforeProc: 0, BeforeIndex: 2}}
	controlled, err := Apply(comp, syncs)
	if err != nil {
		t.Fatal(err)
	}
	// Every original local state's valuation survives in order: compare
	// the per-process sequences of variable values over original events.
	for i := 0; i < comp.N(); i++ {
		for _, name := range comp.Vars(i) {
			var orig, ctl []int
			for k := 0; k <= comp.Len(i); k++ {
				v, _ := comp.Value(i, k, name)
				orig = append(orig, v)
			}
			for k := 0; k <= controlled.Len(i); k++ {
				v, _ := controlled.Value(i, k, name)
				ctl = append(ctl, v)
			}
			// Dedup consecutive repeats in the controlled sequence
			// (control events change nothing) and compare value change
			// sequences.
			if !sameChangeSeq(orig, ctl) {
				t.Errorf("%s@P%d value sequence changed: %v vs %v", name, i+1, orig, ctl)
			}
		}
	}
	// The sync is enforced: g1 happens-before e2 in the controlled trace.
	g1 := findLabel(t, controlled, "g1")
	e2 := findLabel(t, controlled, "e2")
	if !controlled.HappenedBefore(g1, e2) {
		t.Error("synchronization g1 → e2 not enforced")
	}
}

func sameChangeSeq(a, b []int) bool {
	ca, cb := changes(a), changes(b)
	if len(ca) != len(cb) {
		return false
	}
	for i := range ca {
		if ca[i] != cb[i] {
			return false
		}
	}
	return true
}

func changes(xs []int) []int {
	out := []int{xs[0]}
	for _, x := range xs[1:] {
		if x != out[len(out)-1] {
			out = append(out, x)
		}
	}
	return out
}

func findLabel(t *testing.T, c *computation.Computation, label string) *computation.Event {
	t.Helper()
	for i := 0; i < c.N(); i++ {
		for _, e := range c.Events(i) {
			if e.Label == label {
				return e
			}
		}
	}
	t.Fatalf("no event labeled %q", label)
	return nil
}

func TestSortSyncs(t *testing.T) {
	syncs := []Sync{
		{1, 2, 0, 1},
		{0, 2, 1, 1},
		{0, 1, 1, 1},
		{0, 1, 0, 2},
	}
	SortSyncs(syncs)
	want := []Sync{{0, 1, 0, 2}, {0, 1, 1, 1}, {0, 2, 1, 1}, {1, 2, 0, 1}}
	for i := range want {
		if syncs[i] != want[i] {
			t.Fatalf("sorted[%d] = %v, want %v", i, syncs[i], want[i])
		}
	}
	if syncs[0].String() != "P1:1 → P1:2" {
		t.Errorf("String = %q", syncs[0].String())
	}
}

package predicate

import (
	"fmt"

	"repro/internal/computation"
)

// ChannelEmpty holds when no message from process From to process To is in
// flight. Like the global ChannelsEmpty it is a monotonic channel
// predicate: regular, hence both linear and post-linear.
//
// A message that is never received within the computation has no
// identifiable destination; it is conservatively attributed to every
// outgoing channel of its sender (it keeps them all non-empty once sent).
type ChannelEmpty struct {
	From, To int
}

var (
	_ Linear     = ChannelEmpty{}
	_ PostLinear = ChannelEmpty{}
)

// inFlightIDs returns the ids of the From→To messages in flight at cut.
func (p ChannelEmpty) inFlightIDs(c *computation.Computation, cut computation.Cut) []int {
	var out []int
	for _, id := range c.Messages() {
		s := c.SendOf(id)
		if s.Proc != p.From || cut[s.Proc] < s.Index {
			continue
		}
		r := c.RecvOf(id)
		if r == nil {
			out = append(out, id)
			continue
		}
		if r.Proc != p.To {
			continue
		}
		if cut[r.Proc] < r.Index {
			out = append(out, id)
		}
	}
	return out
}

// Eval implements Predicate.
func (p ChannelEmpty) Eval(c *computation.Computation, cut computation.Cut) bool {
	return len(p.inFlightIDs(c, cut)) == 0
}

// Forbidden implements Linear: the receiver must consume the pending
// message; a message that is never received makes the predicate
// unsatisfiable above the cut.
func (p ChannelEmpty) Forbidden(c *computation.Computation, cut computation.Cut) (int, bool) {
	ids := p.inFlightIDs(c, cut)
	if len(ids) == 0 {
		panic("predicate: Forbidden called with empty channel")
	}
	for _, id := range ids {
		if r := c.RecvOf(id); r != nil {
			return r.Proc, true
		}
	}
	return 0, false
}

// Retreat implements PostLinear: the sender must undo the send.
func (p ChannelEmpty) Retreat(c *computation.Computation, cut computation.Cut) (int, bool) {
	ids := p.inFlightIDs(c, cut)
	if len(ids) == 0 {
		panic("predicate: Retreat called with empty channel")
	}
	return p.From, true
}

// String implements Predicate; the rendering matches the CTL parser's
// channelEmpty(...) syntax.
func (p ChannelEmpty) String() string {
	return fmt.Sprintf("channelEmpty(P%d, P%d)", p.From+1, p.To+1)
}

// InFlightAtMost holds when at most K messages are in flight anywhere. For
// K = 0 it coincides with ChannelsEmpty. It is a monotonic channel
// predicate in the sense of Chase–Garg... but unlike emptiness it is not
// meet-closed in general (two cuts can each keep different K-subsets in
// flight while their intersection has more sends outstanding than
// receives); it is kept as an example of an *arbitrary* channel predicate
// for the exponential cells and is routed accordingly.
type InFlightAtMost struct {
	K int
}

// Eval implements Predicate.
func (p InFlightAtMost) Eval(c *computation.Computation, cut computation.Cut) bool {
	return c.InFlight(cut) <= p.K
}

// String implements Predicate.
func (p InFlightAtMost) String() string { return fmt.Sprintf("inFlight <= %d", p.K) }

// AtLeastK holds when at least K of the given *stable* local predicates
// hold. If every local predicate is stable (monotone along its process —
// once true at a state, true at all later states), the count never
// decreases along any path, making AtLeastK a stable global predicate
// (hence observer-independent). The constructor does not verify stability;
// lattice.CheckStable can, on small computations.
type AtLeastK struct {
	K      int
	Locals []LocalPredicate
}

// Eval implements Predicate.
func (p AtLeastK) Eval(c *computation.Computation, cut computation.Cut) bool {
	count := 0
	for _, l := range p.Locals {
		if l.HoldsAt(c, cut[l.Process()]) {
			count++
			if count >= p.K {
				return true
			}
		}
	}
	return count >= p.K
}

// String implements Predicate; the rendering matches the CTL parser's
// atLeast(...) syntax.
func (p AtLeastK) String() string {
	parts := localStrings(p.Locals)
	out := fmt.Sprintf("atLeast(%d", p.K)
	for _, s := range parts {
		out += ", " + s
	}
	return out + ")"
}

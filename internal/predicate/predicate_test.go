package predicate

import (
	"testing"

	"repro/internal/computation"
)

// twoProc builds a small fixture: P1 with x = 0,1,2 over two events, P2
// with y = 5,3 over one event, and a message from P1's second event to a
// P2 receive.
func twoProc(t testing.TB) *computation.Computation {
	t.Helper()
	b := computation.NewBuilder(2)
	b.SetInitial(0, "x", 0)
	b.SetInitial(1, "y", 5)
	computation.Set(b.Internal(0), "x", 1)
	s, m := b.Send(0)
	computation.Set(s, "x", 2)
	computation.Set(b.Internal(1), "y", 3)
	b.Receive(1, m)
	return b.MustBuild()
}

func TestVarCmpOps(t *testing.T) {
	comp := twoProc(t)
	cases := []struct {
		op   Op
		k    int
		at   int // P1 state
		want bool
	}{
		{LT, 1, 0, true}, {LT, 1, 1, false},
		{LE, 1, 1, true}, {LE, 1, 2, false},
		{EQ, 2, 2, true}, {EQ, 2, 1, false},
		{NE, 2, 1, true}, {NE, 2, 2, false},
		{GE, 1, 1, true}, {GE, 1, 0, false},
		{GT, 1, 2, true}, {GT, 1, 1, false},
	}
	for _, c := range cases {
		p := VarCmp{Proc: 0, Var: "x", Op: c.op, K: c.k}
		if got := p.HoldsAt(comp, c.at); got != c.want {
			t.Errorf("x %s %d at state %d = %v, want %v", c.op, c.k, c.at, got, c.want)
		}
	}
	// Eval reads the cut's state.
	p := VarCmp{Proc: 0, Var: "x", Op: GE, K: 2}
	if p.Eval(comp, computation.Cut{1, 0}) {
		t.Error("x>=2 should fail at state 1")
	}
	if !p.Eval(comp, computation.Cut{2, 0}) {
		t.Error("x>=2 should hold at state 2")
	}
	if p.String() != "x@P1 >= 2" {
		t.Errorf("String = %q", p.String())
	}
}

func TestVarCmpUnknownOpPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("unknown operator did not panic")
		}
	}()
	VarCmp{Proc: 0, Var: "x", Op: "~", K: 1}.HoldsAt(twoProc(t), 0)
}

func TestConjunctiveEvalAndForbidden(t *testing.T) {
	comp := twoProc(t)
	p := Conj(
		VarCmp{Proc: 0, Var: "x", Op: GE, K: 2},
		VarCmp{Proc: 1, Var: "y", Op: LE, K: 3},
	)
	if p.Eval(comp, computation.Cut{1, 1}) {
		t.Error("conjunction should fail: x = 1")
	}
	if !p.Eval(comp, computation.Cut{2, 1}) {
		t.Error("conjunction should hold at <2 1>")
	}
	proc, ok := p.Forbidden(comp, computation.Cut{1, 1})
	if !ok || proc != 0 {
		t.Errorf("Forbidden = %d, %v; want process 0", proc, ok)
	}
	proc, ok = p.Retreat(comp, computation.Cut{1, 0})
	if !ok || proc != 0 {
		t.Errorf("Retreat = %d, %v; want process 0", proc, ok)
	}
	// Forbidden on a satisfied predicate panics (contract violation).
	defer func() {
		if recover() == nil {
			t.Error("Forbidden on satisfied predicate did not panic")
		}
	}()
	p.Forbidden(comp, computation.Cut{2, 1})
}

func TestDisjunctiveAndNegation(t *testing.T) {
	comp := twoProc(t)
	d := Disj(
		VarCmp{Proc: 0, Var: "x", Op: GE, K: 2},
		VarCmp{Proc: 1, Var: "y", Op: GE, K: 9},
	)
	if !d.Eval(comp, computation.Cut{2, 0}) {
		t.Error("disjunction should hold at <2 0>")
	}
	if d.Eval(comp, computation.Cut{0, 0}) {
		t.Error("disjunction should fail at ∅")
	}
	n := d.Negate()
	for _, cut := range []computation.Cut{{0, 0}, {1, 1}, {2, 2}} {
		if n.Eval(comp, cut) == d.Eval(comp, cut) {
			t.Errorf("negation agrees with original at %v", cut)
		}
	}
	// Double negation restores conjunctive semantics.
	back := n.Negate()
	for _, cut := range []computation.Cut{{0, 0}, {1, 1}, {2, 2}} {
		if back.Eval(comp, cut) != d.Eval(comp, cut) {
			t.Errorf("double negation differs at %v", cut)
		}
	}
}

func TestCombinators(t *testing.T) {
	comp := twoProc(t)
	a := VarCmp{Proc: 0, Var: "x", Op: GE, K: 1}
	b := VarCmp{Proc: 1, Var: "y", Op: EQ, K: 3}
	cut := computation.Cut{1, 1}
	if !(And{Ps: []Predicate{a, b}}).Eval(comp, cut) {
		t.Error("And failed")
	}
	if !(Or{Ps: []Predicate{a, Not{P: a}}}).Eval(comp, cut) {
		t.Error("Or with complement failed")
	}
	if (Not{P: a}).Eval(comp, cut) {
		t.Error("Not failed")
	}
	if (And{}).Eval(comp, cut) != true || (Or{}).Eval(comp, cut) != false {
		t.Error("empty combinator identities wrong")
	}
	al := AndLinear{Ps: []Linear{Conj(a), ChannelsEmpty{}}}
	if !al.Eval(comp, computation.Cut{1, 0}) {
		t.Error("AndLinear failed at <1 0>")
	}
	if al.Eval(comp, computation.Cut{2, 1}) { // message in flight
		t.Error("AndLinear should fail with message in flight")
	}
	proc, ok := al.Forbidden(comp, computation.Cut{2, 1})
	if !ok || proc != 1 {
		t.Errorf("AndLinear.Forbidden = %d, %v; want receiver process 1", proc, ok)
	}
}

func TestChannelsEmpty(t *testing.T) {
	comp := twoProc(t)
	ce := ChannelsEmpty{}
	if !ce.Eval(comp, computation.Cut{1, 1}) {
		t.Error("channels empty before the send")
	}
	if ce.Eval(comp, computation.Cut{2, 1}) {
		t.Error("channels not empty after send before receive")
	}
	if !ce.Eval(comp, computation.Cut{2, 2}) {
		t.Error("channels empty after receive")
	}
	proc, ok := ce.Forbidden(comp, computation.Cut{2, 1})
	if !ok || proc != 1 {
		t.Errorf("Forbidden = %d, %v", proc, ok)
	}
	proc, ok = ce.Retreat(comp, computation.Cut{2, 1})
	if !ok || proc != 0 {
		t.Errorf("Retreat = %d, %v", proc, ok)
	}
}

func TestChannelsEmptyUnreceived(t *testing.T) {
	b := computation.NewBuilder(2)
	b.Send(0) // never received
	b.Internal(1)
	comp := b.MustBuild()
	_, ok := ChannelsEmpty{}.Forbidden(comp, computation.Cut{1, 0})
	if ok {
		t.Error("Forbidden should abort: message never received")
	}
	// Retreat still works: undo the send.
	proc, ok := ChannelsEmpty{}.Retreat(comp, computation.Cut{1, 0})
	if !ok || proc != 0 {
		t.Errorf("Retreat = %d, %v", proc, ok)
	}
}

func TestStableAndReceived(t *testing.T) {
	comp := twoProc(t)
	r := Received{ID: 1}
	if r.Eval(comp, computation.Cut{2, 1}) {
		t.Error("received before the receive event")
	}
	if !r.Eval(comp, computation.Cut{2, 2}) {
		t.Error("not received after the receive event")
	}
	missing := Received{ID: 99}
	if missing.Eval(comp, comp.FinalCut()) {
		t.Error("unknown message reported received")
	}
	term := Terminated{}
	if term.Eval(comp, computation.Cut{2, 1}) || !term.Eval(comp, comp.FinalCut()) {
		t.Error("Terminated wrong")
	}
	s := Stable{P: r}
	if s.Eval(comp, computation.Cut{2, 1}) != r.Eval(comp, computation.Cut{2, 1}) {
		t.Error("Stable wrapper changes semantics")
	}
	if s.String() == "" || r.String() == "" || term.String() == "" {
		t.Error("empty String")
	}
}

func TestConstAndObserverIndependent(t *testing.T) {
	comp := twoProc(t)
	if !True.Eval(comp, computation.Cut{0, 0}) || False.Eval(comp, computation.Cut{0, 0}) {
		t.Error("constants broken")
	}
	if _, ok := False.Forbidden(comp, computation.Cut{0, 0}); ok {
		t.Error("False.Forbidden should abort")
	}
	if _, ok := False.Retreat(comp, computation.Cut{0, 0}); ok {
		t.Error("False.Retreat should abort")
	}
	oi := ObserverIndependent{P: True}
	if !oi.Eval(comp, computation.Cut{0, 0}) || oi.String() != "oi(true)" {
		t.Errorf("ObserverIndependent wrapper broken: %s", oi)
	}
	if True.String() != "true" || False.String() != "false" {
		t.Error("Const.String wrong")
	}
}

func TestMergeConj(t *testing.T) {
	a := Conj(VarCmp{Proc: 0, Var: "x", Op: GE, K: 1})
	b := Conj(VarCmp{Proc: 1, Var: "y", Op: LE, K: 3})
	m := MergeConj(a, b)
	if len(m.Locals) != 2 {
		t.Fatalf("merged conjuncts = %d", len(m.Locals))
	}
	comp := twoProc(t)
	if m.Eval(comp, computation.Cut{0, 1}) {
		t.Error("merged conjunction should fail: x = 0")
	}
	if !m.Eval(comp, computation.Cut{1, 1}) {
		t.Error("merged conjunction should hold")
	}
}

func TestLocalFnAndNotLocal(t *testing.T) {
	comp := twoProc(t)
	odd := LocalFn{Proc: 0, Name: "xOdd", Fn: func(c *computation.Computation, k int) bool {
		v, _ := c.Value(0, k, "x")
		return v%2 == 1
	}}
	if odd.HoldsAt(comp, 0) || !odd.HoldsAt(comp, 1) {
		t.Error("LocalFn wrong")
	}
	if !odd.Eval(comp, computation.Cut{1, 0}) {
		t.Error("LocalFn Eval wrong")
	}
	n := NotLocal{P: odd}
	if n.Process() != 0 || n.HoldsAt(comp, 1) || !n.HoldsAt(comp, 0) {
		t.Error("NotLocal wrong")
	}
	if !n.Eval(comp, computation.Cut{0, 0}) {
		t.Error("NotLocal Eval wrong")
	}
	if odd.String() != "xOdd@P1" || n.String() != "!(xOdd@P1)" {
		t.Errorf("Strings: %q, %q", odd.String(), n.String())
	}
}

func TestStringRendering(t *testing.T) {
	c := Conj(
		VarCmp{Proc: 0, Var: "x", Op: LT, K: 4},
		VarCmp{Proc: 2, Var: "z", Op: GE, K: 0},
	)
	want := "conj(x@P1 < 4, z@P3 >= 0)"
	if c.String() != want {
		t.Errorf("Conjunctive.String = %q, want %q", c.String(), want)
	}
	d := Disj(VarCmp{Proc: 0, Var: "x", Op: EQ, K: 1})
	if d.String() != "disj(x@P1 == 1)" {
		t.Errorf("Disjunctive.String = %q", d.String())
	}
	and := And{Ps: []Predicate{c, d}}
	or := Or{Ps: []Predicate{c, d}}
	al := AndLinear{Ps: []Linear{c, ChannelsEmpty{}}}
	for _, s := range []string{and.String(), or.String(), al.String(), (Not{P: c}).String()} {
		if s == "" {
			t.Error("empty combinator String")
		}
	}
}

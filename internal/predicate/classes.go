package predicate

import "repro/internal/computation"

// ObserverIndependent wraps a predicate the caller asserts to be
// observer-independent: AF(p) ⟺ EF(p), i.e. if p holds in some observation
// of the computation it holds in all of them. Stable and disjunctive
// predicates are observer-independent; so is any predicate that holds
// initially. Package explore provides CheckObserverIndependent to verify
// the assertion on small computations.
//
// The wrapper lets the dispatcher route EF/AF detection to the
// single-observation algorithm of Charron-Bost et al.; under EG and AG the
// paper proves detection NP-complete and co-NP-complete respectively, so
// the dispatcher falls back to the exponential solver there.
type ObserverIndependent struct {
	P Predicate
}

// Eval implements Predicate.
func (p ObserverIndependent) Eval(c *computation.Computation, cut computation.Cut) bool {
	return p.P.Eval(c, cut)
}

// String implements Predicate.
func (p ObserverIndependent) String() string { return "oi(" + p.P.String() + ")" }

// MergeConj returns the conjunction of two conjunctive predicates, which is
// conjunctive again (local predicate lists concatenate).
func MergeConj(a, b Conjunctive) Conjunctive {
	locals := make([]LocalPredicate, 0, len(a.Locals)+len(b.Locals))
	locals = append(locals, a.Locals...)
	locals = append(locals, b.Locals...)
	return Conjunctive{Locals: locals}
}

package predicate

import (
	"fmt"

	"repro/internal/computation"
)

// MonotoneGE is the classic relational linear predicate
// "yVar@ProcY ≥ xVar@ProcX" for variables that are nondecreasing along
// their processes — e.g. "acknowledgements never trail requests" or
// "consumer counter keeps up with producer counter".
//
// Linearity (the paper's "some relational predicates" remark): with both
// variables monotone, the satisfying cuts are closed under meet — at the
// componentwise minimum, y only shrinks to one of the already-satisfying
// values while x shrinks at least as much. The forbidden process when the
// predicate fails is ProcY: x cannot decrease, so every satisfying
// extension advances y.
//
// The monotonicity of the two variables is an assumption on the
// computation, not checked here; lattice.CheckLinear verifies the
// consequence on small computations, and feeding a non-monotone trace
// voids the advancement guarantee.
type MonotoneGE struct {
	ProcY int
	VarY  string
	ProcX int
	VarX  string
}

var _ Linear = MonotoneGE{}

// Eval implements Predicate.
func (p MonotoneGE) Eval(c *computation.Computation, cut computation.Cut) bool {
	y, _ := c.Value(p.ProcY, cut[p.ProcY], p.VarY)
	x, _ := c.Value(p.ProcX, cut[p.ProcX], p.VarX)
	return y >= x
}

// Forbidden implements Linear.
func (p MonotoneGE) Forbidden(c *computation.Computation, cut computation.Cut) (int, bool) {
	return p.ProcY, true
}

// String implements Predicate; the rendering matches the CTL parser's
// monotone(...) syntax.
func (p MonotoneGE) String() string {
	return fmt.Sprintf("monotone(%s@P%d >= %s@P%d)", p.VarY, p.ProcY+1, p.VarX, p.ProcX+1)
}

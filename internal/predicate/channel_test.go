package predicate

import (
	"strings"
	"testing"

	"repro/internal/computation"
)

// threeProcChannels: P1 sends m1 to P2 and m2 to P3; P2 sends m3 to P3;
// one message (m2) is never received.
func threeProcChannels(t testing.TB) *computation.Computation {
	t.Helper()
	b := computation.NewBuilder(3)
	_, m1 := b.Send(0)
	_, m2 := b.Send(0)
	_ = m2 // never received
	b.Receive(1, m1)
	_, m3 := b.Send(1)
	b.Receive(2, m3)
	return b.MustBuild()
}

func TestChannelEmptyEval(t *testing.T) {
	c := threeProcChannels(t)
	p12 := ChannelEmpty{From: 0, To: 1}
	p13 := ChannelEmpty{From: 0, To: 2}
	p23 := ChannelEmpty{From: 1, To: 2}

	cases := []struct {
		cut computation.Cut
		p12 bool
		p13 bool
		p23 bool
	}{
		{computation.Cut{0, 0, 0}, true, true, true},
		{computation.Cut{1, 0, 0}, false, true, true}, // m1 in flight
		// m2 is never received: once sent it counts against every
		// outgoing channel of P1 (conservative attribution).
		{computation.Cut{2, 0, 0}, false, false, true},
		{computation.Cut{2, 1, 0}, false, false, true},
		{computation.Cut{2, 2, 0}, false, false, false}, // m3 in flight
		{computation.Cut{2, 2, 1}, false, false, true},
	}
	for _, tc := range cases {
		if got := p12.Eval(c, tc.cut); got != tc.p12 {
			t.Errorf("p12 at %v = %v, want %v", tc.cut, got, tc.p12)
		}
		if got := p13.Eval(c, tc.cut); got != tc.p13 {
			t.Errorf("p13 at %v = %v, want %v", tc.cut, got, tc.p13)
		}
		if got := p23.Eval(c, tc.cut); got != tc.p23 {
			t.Errorf("p23 at %v = %v, want %v", tc.cut, got, tc.p23)
		}
	}
}

func TestChannelEmptyForbiddenRetreat(t *testing.T) {
	c := threeProcChannels(t)
	p12 := ChannelEmpty{From: 0, To: 1}
	proc, ok := p12.Forbidden(c, computation.Cut{1, 0, 0})
	if !ok || proc != 1 {
		t.Errorf("Forbidden = %d, %v; want receiver P2", proc, ok)
	}
	proc, ok = p12.Retreat(c, computation.Cut{1, 0, 0})
	if !ok || proc != 0 {
		t.Errorf("Retreat = %d, %v; want sender P1", proc, ok)
	}
	// m2 is never received: channel P1→P3 unsatisfiable above a cut
	// containing the send.
	p13 := ChannelEmpty{From: 0, To: 2}
	if _, ok := p13.Forbidden(c, computation.Cut{2, 0, 0}); ok {
		t.Error("Forbidden should abort for a never-received message")
	}
	defer func() {
		if recover() == nil {
			t.Error("Forbidden on satisfied channel did not panic")
		}
	}()
	p12.Forbidden(c, computation.Cut{0, 0, 0})
}

func TestChannelEmptyRetreatPanicsWhenSatisfied(t *testing.T) {
	c := threeProcChannels(t)
	defer func() {
		if recover() == nil {
			t.Error("Retreat on satisfied channel did not panic")
		}
	}()
	ChannelEmpty{From: 0, To: 1}.Retreat(c, computation.Cut{0, 0, 0})
}

func TestInFlightAtMost(t *testing.T) {
	c := threeProcChannels(t)
	if !(InFlightAtMost{K: 0}).Eval(c, computation.Cut{0, 0, 0}) {
		t.Error("0 in flight at ∅")
	}
	if (InFlightAtMost{K: 1}).Eval(c, computation.Cut{2, 2, 0}) {
		t.Error("m2 and m3 are both in flight at <2 2 0>")
	}
	if !(InFlightAtMost{K: 2}).Eval(c, computation.Cut{2, 2, 0}) {
		t.Error("exactly 2 in flight at <2 2 0>")
	}
	if (InFlightAtMost{K: 1}).String() == "" {
		t.Error("empty String")
	}
}

func TestAtLeastK(t *testing.T) {
	b := computation.NewBuilder(3)
	computation.Set(b.Internal(0), "done", 1)
	computation.Set(b.Internal(1), "done", 1)
	computation.Set(b.Internal(2), "done", 1)
	c := b.MustBuild()

	locals := []LocalPredicate{
		VarCmp{Proc: 0, Var: "done", Op: EQ, K: 1},
		VarCmp{Proc: 1, Var: "done", Op: EQ, K: 1},
		VarCmp{Proc: 2, Var: "done", Op: EQ, K: 1},
	}
	p2 := AtLeastK{K: 2, Locals: locals}
	cases := []struct {
		cut  computation.Cut
		want bool
	}{
		{computation.Cut{0, 0, 0}, false},
		{computation.Cut{1, 0, 0}, false},
		{computation.Cut{1, 1, 0}, true},
		{computation.Cut{1, 1, 1}, true},
	}
	for _, tc := range cases {
		if got := p2.Eval(c, tc.cut); got != tc.want {
			t.Errorf("atLeast2 at %v = %v, want %v", tc.cut, got, tc.want)
		}
	}
	if !(AtLeastK{K: 0, Locals: locals}).Eval(c, computation.Cut{0, 0, 0}) {
		t.Error("atLeast0 must hold vacuously")
	}
	if !strings.Contains(p2.String(), "atLeast(2") {
		t.Errorf("String = %q", p2.String())
	}
}

// Package predicate defines global predicates over the consistent cuts of a
// distributed computation and the structural predicate classes the paper's
// algorithms exploit: local, conjunctive, disjunctive, stable, linear,
// post-linear, regular and observer-independent predicates.
//
// The key computational interface is Linear: a linear predicate exposes the
// Chase–Garg advancement property ("forbidden process") that lets EF, EG,
// AG and EU be detected in polynomial time without enumerating the lattice.
package predicate

import (
	"fmt"
	"strings"

	"repro/internal/computation"
)

// Predicate is a global, non-temporal predicate evaluated on a consistent
// cut of a computation. Implementations must be pure: Eval may be called
// many times on many cuts in any order.
type Predicate interface {
	// Eval reports whether the predicate holds at the given cut.
	Eval(c *computation.Computation, cut computation.Cut) bool
	// String renders the predicate for diagnostics.
	String() string
}

// Linear is a predicate whose satisfying cuts form an inf-semilattice
// (closed under meet). Such a predicate admits the advancement property:
// whenever it does not hold at a cut, some process is "forbidden" — every
// satisfying cut extending this one includes at least one more event of
// that process.
type Linear interface {
	Predicate
	// Forbidden returns a forbidden process for the cut. It is called only
	// when Eval is false. ok = false means the predicate provably holds at
	// no cut that contains this one, aborting the advancement early.
	Forbidden(c *computation.Computation, cut computation.Cut) (proc int, ok bool)
}

// PostLinear is the dual of Linear: satisfying cuts form a sup-semilattice
// (closed under join), and whenever the predicate fails at a cut some
// process must retreat — every satisfying cut contained in this one
// excludes the last included event of that process.
type PostLinear interface {
	Predicate
	// Retreat returns a process whose last event must be removed. Called
	// only when Eval is false. ok = false aborts: no satisfying cut is
	// contained in this one.
	Retreat(c *computation.Computation, cut computation.Cut) (proc int, ok bool)
}

// LocalPredicate is a predicate whose truth depends only on the local state
// of a single process.
type LocalPredicate interface {
	Predicate
	// Process returns the process the predicate is local to.
	Process() int
	// HoldsAt reports whether the predicate holds in local state k of its
	// process.
	HoldsAt(c *computation.Computation, k int) bool
}

// ---------------------------------------------------------------------------
// Local predicates

// Op is a comparison operator for variable predicates.
type Op string

// Comparison operators accepted by VarCmp.
const (
	LT Op = "<"
	LE Op = "<="
	EQ Op = "=="
	NE Op = "!="
	GE Op = ">="
	GT Op = ">"
)

// VarCmp is the workhorse local predicate "variable OP constant on process
// Proc". An undefined variable reads as 0, matching the builder semantics.
type VarCmp struct {
	Proc int
	Var  string
	Op   Op
	K    int
}

var _ LocalPredicate = VarCmp{}

// Process implements LocalPredicate.
func (p VarCmp) Process() int { return p.Proc }

// HoldsAt implements LocalPredicate.
func (p VarCmp) HoldsAt(c *computation.Computation, k int) bool {
	v, _ := c.Value(p.Proc, k, p.Var)
	switch p.Op {
	case LT:
		return v < p.K
	case LE:
		return v <= p.K
	case EQ:
		return v == p.K
	case NE:
		return v != p.K
	case GE:
		return v >= p.K
	case GT:
		return v > p.K
	default:
		panic(fmt.Sprintf("predicate: unknown operator %q", p.Op))
	}
}

// Eval implements Predicate.
func (p VarCmp) Eval(c *computation.Computation, cut computation.Cut) bool {
	return p.HoldsAt(c, cut[p.Proc])
}

// String implements Predicate.
func (p VarCmp) String() string {
	return fmt.Sprintf("%s@P%d %s %d", p.Var, p.Proc+1, p.Op, p.K)
}

// LocalFn wraps an arbitrary function of the local state as a local
// predicate, for predicates not expressible as a single comparison.
type LocalFn struct {
	Proc int
	Name string
	Fn   func(c *computation.Computation, k int) bool
}

var _ LocalPredicate = LocalFn{}

// Process implements LocalPredicate.
func (p LocalFn) Process() int { return p.Proc }

// HoldsAt implements LocalPredicate.
func (p LocalFn) HoldsAt(c *computation.Computation, k int) bool { return p.Fn(c, k) }

// Eval implements Predicate.
func (p LocalFn) Eval(c *computation.Computation, cut computation.Cut) bool {
	return p.Fn(c, cut[p.Proc])
}

// String implements Predicate.
func (p LocalFn) String() string { return fmt.Sprintf("%s@P%d", p.Name, p.Proc+1) }

// ---------------------------------------------------------------------------
// Conjunctive and disjunctive predicates

// Conjunctive is a conjunction of local predicates, the class of Garg and
// Waldecker's weak conjunctive predicates. Conjunctive predicates are
// regular, hence linear.
type Conjunctive struct {
	Locals []LocalPredicate
}

var _ Linear = Conjunctive{}

// Conj builds a conjunctive predicate from local predicates.
func Conj(locals ...LocalPredicate) Conjunctive { return Conjunctive{Locals: locals} }

// Eval implements Predicate.
func (p Conjunctive) Eval(c *computation.Computation, cut computation.Cut) bool {
	for _, l := range p.Locals {
		if !l.HoldsAt(c, cut[l.Process()]) {
			return false
		}
	}
	return true
}

// Forbidden implements Linear: a process whose local conjunct is false
// cannot reach a satisfying cut without executing further events.
func (p Conjunctive) Forbidden(c *computation.Computation, cut computation.Cut) (int, bool) {
	for _, l := range p.Locals {
		if !l.HoldsAt(c, cut[l.Process()]) {
			return l.Process(), true
		}
	}
	panic("predicate: Forbidden called on satisfied conjunctive predicate")
}

// Retreat implements PostLinear: conjunctive predicates are also
// post-linear (their satisfying cuts are closed under join), so the same
// failing conjunct forces its process to retreat.
func (p Conjunctive) Retreat(c *computation.Computation, cut computation.Cut) (int, bool) {
	for _, l := range p.Locals {
		if !l.HoldsAt(c, cut[l.Process()]) {
			return l.Process(), true
		}
	}
	panic("predicate: Retreat called on satisfied conjunctive predicate")
}

// String implements Predicate.
func (p Conjunctive) String() string { return joinStrings("conj", localStrings(p.Locals)) }

// Disjunctive is a disjunction of local predicates. Its negation is
// conjunctive, which the AU composition of Section 7 exploits.
type Disjunctive struct {
	Locals []LocalPredicate
}

var _ Predicate = Disjunctive{}

// Disj builds a disjunctive predicate from local predicates.
func Disj(locals ...LocalPredicate) Disjunctive { return Disjunctive{Locals: locals} }

// Eval implements Predicate.
func (p Disjunctive) Eval(c *computation.Computation, cut computation.Cut) bool {
	for _, l := range p.Locals {
		if l.HoldsAt(c, cut[l.Process()]) {
			return true
		}
	}
	return false
}

// String implements Predicate.
func (p Disjunctive) String() string { return joinStrings("disj", localStrings(p.Locals)) }

// Negate returns the conjunctive complement ¬(l1 ∨ … ∨ lk) = ¬l1 ∧ … ∧ ¬lk.
func (p Disjunctive) Negate() Conjunctive {
	locals := make([]LocalPredicate, len(p.Locals))
	for i, l := range p.Locals {
		locals[i] = NotLocal{l}
	}
	return Conjunctive{Locals: locals}
}

// Negate returns the disjunctive complement of a conjunctive predicate.
func (p Conjunctive) Negate() Disjunctive {
	locals := make([]LocalPredicate, len(p.Locals))
	for i, l := range p.Locals {
		locals[i] = NotLocal{l}
	}
	return Disjunctive{Locals: locals}
}

// NotLocal is the negation of a local predicate; it is itself local.
type NotLocal struct {
	P LocalPredicate
}

var _ LocalPredicate = NotLocal{}

// Process implements LocalPredicate.
func (p NotLocal) Process() int { return p.P.Process() }

// HoldsAt implements LocalPredicate.
func (p NotLocal) HoldsAt(c *computation.Computation, k int) bool { return !p.P.HoldsAt(c, k) }

// Eval implements Predicate.
func (p NotLocal) Eval(c *computation.Computation, cut computation.Cut) bool {
	return !p.P.Eval(c, cut)
}

// String implements Predicate.
func (p NotLocal) String() string { return "!(" + p.P.String() + ")" }

func localStrings(ls []LocalPredicate) []string {
	out := make([]string, len(ls))
	for i, l := range ls {
		out[i] = l.String()
	}
	return out
}

func joinStrings(head string, parts []string) string {
	return head + "(" + strings.Join(parts, ", ") + ")"
}

// ---------------------------------------------------------------------------
// Generic combinators (arbitrary predicates)

// Not negates an arbitrary predicate. The result carries no class
// information.
type Not struct {
	P Predicate
}

// Eval implements Predicate.
func (p Not) Eval(c *computation.Computation, cut computation.Cut) bool {
	return !p.P.Eval(c, cut)
}

// String implements Predicate.
func (p Not) String() string { return "!(" + p.P.String() + ")" }

// And is the conjunction of arbitrary predicates.
type And struct {
	Ps []Predicate
}

// Eval implements Predicate.
func (p And) Eval(c *computation.Computation, cut computation.Cut) bool {
	for _, q := range p.Ps {
		if !q.Eval(c, cut) {
			return false
		}
	}
	return true
}

// String implements Predicate.
func (p And) String() string {
	parts := make([]string, len(p.Ps))
	for i, q := range p.Ps {
		parts[i] = q.String()
	}
	return joinStrings("and", parts)
}

// Or is the disjunction of arbitrary predicates.
type Or struct {
	Ps []Predicate
}

// Eval implements Predicate.
func (p Or) Eval(c *computation.Computation, cut computation.Cut) bool {
	for _, q := range p.Ps {
		if q.Eval(c, cut) {
			return true
		}
	}
	return false
}

// String implements Predicate.
func (p Or) String() string {
	parts := make([]string, len(p.Ps))
	for i, q := range p.Ps {
		parts[i] = q.String()
	}
	return joinStrings("or", parts)
}

// AndLinear is the conjunction of linear predicates, which is again linear
// (inf-semilattices are closed under intersection).
type AndLinear struct {
	Ps []Linear
}

var _ Linear = AndLinear{}

// Eval implements Predicate.
func (p AndLinear) Eval(c *computation.Computation, cut computation.Cut) bool {
	for _, q := range p.Ps {
		if !q.Eval(c, cut) {
			return false
		}
	}
	return true
}

// Forbidden implements Linear by delegating to the first failing conjunct.
func (p AndLinear) Forbidden(c *computation.Computation, cut computation.Cut) (int, bool) {
	for _, q := range p.Ps {
		if !q.Eval(c, cut) {
			return q.Forbidden(c, cut)
		}
	}
	panic("predicate: Forbidden called on satisfied conjunction")
}

// String implements Predicate.
func (p AndLinear) String() string {
	parts := make([]string, len(p.Ps))
	for i, q := range p.Ps {
		parts[i] = q.String()
	}
	return joinStrings("and", parts)
}

// ---------------------------------------------------------------------------
// Channel predicates

// ChannelsEmpty holds when no message is in flight. It is a monotonic
// channel predicate: regular (closed under join and meet), hence linear and
// post-linear.
type ChannelsEmpty struct{}

var (
	_ Linear     = ChannelsEmpty{}
	_ PostLinear = ChannelsEmpty{}
)

// Eval implements Predicate.
func (ChannelsEmpty) Eval(c *computation.Computation, cut computation.Cut) bool {
	return c.ChannelsEmpty(cut)
}

// Forbidden implements Linear: the receiver of an in-flight message must
// advance past the pending receive; if the message is never received no
// cut above can satisfy the predicate.
func (ChannelsEmpty) Forbidden(c *computation.Computation, cut computation.Cut) (int, bool) {
	for _, id := range c.Messages() {
		s := c.SendOf(id)
		if cut[s.Proc] < s.Index {
			continue // not yet sent
		}
		r := c.RecvOf(id)
		if r == nil {
			return 0, false // sent but never received: unsatisfiable above
		}
		if cut[r.Proc] < r.Index {
			return r.Proc, true
		}
	}
	panic("predicate: Forbidden called with empty channels")
}

// Retreat implements PostLinear: the sender of an in-flight message must
// retreat to before the send.
func (ChannelsEmpty) Retreat(c *computation.Computation, cut computation.Cut) (int, bool) {
	for _, id := range c.Messages() {
		s := c.SendOf(id)
		if cut[s.Proc] < s.Index {
			continue
		}
		r := c.RecvOf(id)
		if r == nil || cut[r.Proc] < r.Index {
			return s.Proc, true
		}
	}
	panic("predicate: Retreat called with empty channels")
}

// String implements Predicate.
func (ChannelsEmpty) String() string { return "channelsEmpty" }

// ---------------------------------------------------------------------------
// Stable predicates

// Stable wraps a predicate the caller asserts to be stable (once true it
// stays true on every path). The lattice package provides CheckStable to
// verify the assertion on small computations.
type Stable struct {
	P Predicate
}

// Eval implements Predicate.
func (p Stable) Eval(c *computation.Computation, cut computation.Cut) bool {
	return p.P.Eval(c, cut)
}

// String implements Predicate.
func (p Stable) String() string { return "stable(" + p.P.String() + ")" }

// Received holds once message id has been received; receipt of a message
// is the canonical stable predicate.
type Received struct {
	ID int
}

var (
	_ Linear     = Received{}
	_ PostLinear = Received{}
)

// Eval implements Predicate.
func (p Received) Eval(c *computation.Computation, cut computation.Cut) bool {
	r := c.RecvOf(p.ID)
	return r != nil && cut[r.Proc] >= r.Index
}

// Forbidden implements Linear: the satisfying cuts are the up-set of the
// receive event (meet-closed), so the receiver must advance.
func (p Received) Forbidden(c *computation.Computation, cut computation.Cut) (int, bool) {
	r := c.RecvOf(p.ID)
	if r == nil {
		return 0, false // message never received: unsatisfiable
	}
	return r.Proc, true
}

// Retreat implements PostLinear: no cut below a non-satisfying cut can
// contain the receive, so retreat always aborts.
func (p Received) Retreat(*computation.Computation, computation.Cut) (int, bool) {
	return 0, false
}

// String implements Predicate.
func (p Received) String() string { return fmt.Sprintf("received(%d)", p.ID) }

// Terminated holds at the final cut only; "all processes have executed all
// their events" is stable.
type Terminated struct{}

var (
	_ Linear     = Terminated{}
	_ PostLinear = Terminated{}
)

// Eval implements Predicate.
func (Terminated) Eval(c *computation.Computation, cut computation.Cut) bool {
	for i, k := range cut {
		if k < c.Len(i) {
			return false
		}
	}
	return true
}

// Forbidden implements Linear: only the final cut satisfies termination,
// so any process that has not finished must advance.
func (Terminated) Forbidden(c *computation.Computation, cut computation.Cut) (int, bool) {
	for i, k := range cut {
		if k < c.Len(i) {
			return i, true
		}
	}
	panic("predicate: Forbidden called on terminated cut")
}

// Retreat implements PostLinear: no strict prefix of a non-final cut is
// final, so retreat aborts.
func (Terminated) Retreat(*computation.Computation, computation.Cut) (int, bool) {
	return 0, false
}

// String implements Predicate.
func (Terminated) String() string { return "terminated" }

// ---------------------------------------------------------------------------
// Constants

// Fn wraps an arbitrary function of the whole cut as a predicate. It
// carries no class information, so the dispatcher treats it as an
// arbitrary predicate.
type Fn struct {
	Name string
	F    func(c *computation.Computation, cut computation.Cut) bool
}

// Eval implements Predicate.
func (p Fn) Eval(c *computation.Computation, cut computation.Cut) bool { return p.F(c, cut) }

// String implements Predicate.
func (p Fn) String() string { return p.Name }

// Const is the constant predicate, used for the EF/AF abbreviations
// (EF(p) = E[true U p]).
type Const bool

// True and False are the constant predicates.
const (
	True  Const = true
	False Const = false
)

// Eval implements Predicate.
func (p Const) Eval(*computation.Computation, computation.Cut) bool { return bool(p) }

// Forbidden implements Linear vacuously: Const(true) never fails, and for
// Const(false) no cut satisfies the predicate.
func (p Const) Forbidden(*computation.Computation, computation.Cut) (int, bool) {
	return 0, false
}

// Retreat implements PostLinear vacuously.
func (p Const) Retreat(*computation.Computation, computation.Cut) (int, bool) {
	return 0, false
}

// String implements Predicate.
func (p Const) String() string {
	if p {
		return "true"
	}
	return "false"
}

// Package repro is hbdetect: a library for detecting temporal logic
// predicates on the happened-before model of a distributed computation,
// reproducing "Detecting Temporal Logic Predicates on the Happened-Before
// Model" (Sen & Garg, IPPS 2002).
//
// A computation is a set of per-process event sequences related by
// Lamport's happened-before order; its global states are the consistent
// cuts, which form a finite distributive lattice. Properties are written
// in a fragment of CTL interpreted on that lattice — EF (possibly), AF
// (definitely), EG (controllable), AG (invariant), and until — and
// detected without enumerating the lattice whenever the predicate's class
// allows: the paper's Algorithm A1 (EG, linear), Algorithm A2 (AG, linear
// via Birkhoff meet-irreducibles) and Algorithm A3 (E[p U q], conjunctive/
// linear) all run in O(n|E|)-ish time.
//
// Quick start:
//
//	comp := repro.TokenRingMutex(3, 2)
//	f := repro.MustParseFormula("AG(!(crit@P1 == 1 && crit@P2 == 1))")
//	res, err := repro.Detect(comp, f)
//	// res.Holds, res.Algorithm, res.Witness / res.Counterexample
//
// This facade re-exports the user-facing pieces of the internal packages;
// see internal/core for the algorithms, internal/computation for the
// event/cut model, and internal/explore for the explicit-lattice baseline.
package repro

import (
	"fmt"
	"io"

	"repro/internal/computation"
	"repro/internal/control"
	"repro/internal/core"
	"repro/internal/ctl"
	"repro/internal/diagram"
	"repro/internal/predicate"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Computation is an immutable happened-before model of one execution.
type Computation = computation.Computation

// Cut is a global state: the number of events each process has executed.
type Cut = computation.Cut

// Builder constructs computations event by event.
type Builder = computation.Builder

// Event is a single event of a computation.
type Event = computation.Event

// Msg is a message handle connecting a Send to its Receive.
type Msg = computation.Msg

// Formula is a CTL formula over consistent cuts.
type Formula = ctl.Formula

// Result is the outcome of detection: verdict, the algorithm used
// (mirroring the paper's Table 1), and a witness or counterexample.
type Result = core.Result

// Predicate is a global predicate over consistent cuts.
type Predicate = predicate.Predicate

// NewBuilder returns a builder for a computation with n processes.
func NewBuilder(n int) *Builder { return computation.NewBuilder(n) }

// Detect decides whether the computation satisfies the formula, routing to
// the most specific polynomial algorithm the predicate class admits.
func Detect(comp *Computation, f Formula) (Result, error) { return core.Detect(comp, f) }

// ParseFormula parses the textual CTL syntax, e.g.
// "E[conj(z@P3 < 6, x@P1 < 4) U channelsEmpty && x@P1 > 1]".
func ParseFormula(src string) (Formula, error) { return ctl.Parse(src) }

// MustParseFormula is ParseFormula that panics on error.
func MustParseFormula(src string) Formula { return ctl.MustParse(src) }

// DecodeTrace loads a computation from its JSON trace representation.
func DecodeTrace(r io.Reader) (*Computation, error) { return trace.Decode(r) }

// EncodeTrace writes a computation as a JSON trace.
func EncodeTrace(w io.Writer, comp *Computation) error { return trace.Encode(w, comp) }

// Workload generators (see internal/sim for details).
var (
	// TokenRingMutex builds a token-ring mutual exclusion trace.
	TokenRingMutex = sim.TokenRingMutex
	// BuggyMutex injects a mutual-exclusion violation.
	BuggyMutex = sim.BuggyMutex
	// LeaderElection builds a ring leader election trace.
	LeaderElection = sim.LeaderElection
	// ProducerConsumer builds a producers→consumer streaming trace.
	ProducerConsumer = sim.ProducerConsumer
	// Barrier builds a coordinator-based barrier synchronization trace.
	Barrier = sim.Barrier
	// TwoPhaseCommit builds a two-phase commit round.
	TwoPhaseCommit = sim.TwoPhaseCommit
	// Fig2 and Fig4 reconstruct the paper's example computations.
	Fig2 = sim.Fig2
	Fig4 = sim.Fig4
)

// RandomConfig parameterizes RandomComputation.
type RandomConfig = sim.RandomConfig

// RandomComputation generates a seeded random computation.
func RandomComputation(cfg RandomConfig, seed int64) *Computation { return sim.Random(cfg, seed) }

// RenderDiagram draws comp as an ASCII space-time diagram; a non-nil cut
// is marked with brackets and a frontier row.
func RenderDiagram(comp *Computation, cut Cut) string {
	return diagram.Render(comp, diagram.Options{Cut: cut, ShowVars: true, Width: 14})
}

// Sync is one synthesized control synchronization (see internal/control).
type Sync = control.Sync

// Control decides whether the non-temporal predicate given by src is
// controllable on comp (EG, Algorithm A1) and, if so, returns the
// controlled computation — the original plus control messages enforcing
// synchronizations under which the predicate is invariant (AG holds).
// The predicate must compile to a linear, variable-based predicate.
func Control(comp *Computation, src string) (*Computation, []Sync, error) {
	f, err := ctl.Parse(src)
	if err != nil {
		return nil, nil, err
	}
	if ctl.IsTemporal(f) {
		return nil, nil, fmt.Errorf("repro: Control takes a non-temporal predicate, got %s", f)
	}
	p, err := core.Compile(f)
	if err != nil {
		return nil, nil, err
	}
	lin, ok := p.(predicate.Linear)
	if !ok {
		if local, okL := p.(predicate.LocalPredicate); okL {
			lin = predicate.Conj(local)
		} else {
			return nil, nil, fmt.Errorf("repro: %s is not a linear predicate", p)
		}
	}
	controlled, syncs, ok := control.Controlled(comp, lin)
	if !ok {
		return nil, nil, fmt.Errorf("repro: %s is not controllable on this computation (EG fails)", p)
	}
	return controlled, syncs, nil
}

// Command hbserver is the networked streaming predicate-detection
// service: clients open detection sessions over TCP (newline-delimited
// JSON frames) or HTTP, stream the events of an unfolding computation,
// and receive verdict frames the moment an EF watch fires, an AG
// invariant is violated, or a stable-frontier watch latches.
//
// Usage:
//
//	hbserver -listen 127.0.0.1:7457 -http 127.0.0.1:7458
//	hbserver -overflow drop -queue 64        # shed + count under overload
//
// The HTTP address serves both the session API (/api/sessions/...) and
// telemetry (/metrics, /healthz, /debug/obs; /debug/pprof behind
// -pprof). -span-jsonl emits the server's own pipeline spans — ingestible
// back through `hbdetect -spans` — and -slow logs over-threshold
// detection runs as JSONL. SIGINT/SIGTERM drains
// gracefully: queued events are applied, goodbye frames flush, and a
// summary is printed. The wire protocol is documented in DESIGN.md.
package main

import (
	"os"

	"repro/internal/cli"
)

func main() {
	os.Exit(cli.RunServer(os.Args[1:], os.Stdout, os.Stderr))
}

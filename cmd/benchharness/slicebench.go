package main

import (
	"fmt"
	"time"

	"repro/internal/computation"
	"repro/internal/core"
	"repro/internal/ctl"
	"repro/internal/online"
	"repro/internal/predicate"
	"repro/internal/sim"
	"repro/internal/slice"
)

// runSlice measures computation slicing end to end, the three layers of
// the slice-first dispatch:
//
//  1. slice construction: the naive per-event advancement vs the
//     incremental builder, over wide and deep traces,
//  2. slice-routed detection: EF(conj ∧ arbitrary) through the factor's
//     slice sublattice vs the unsliced memoized exponential search,
//  3. bounded on-line monitors: slice-cursor state vs full prefix
//     retention.
func runSlice() {
	sliceConstruction()
	sliceDetection()
	sliceBoundedState()
}

// sliceConstruction compares the two slice builders. Both produce the
// identical slice (pinned by TestIncrementalMatchesNaive and re-checked
// here); the gap is the construction cost: O(n|E|²) advancement runs for
// the naive builder vs O(n|E|) amortized cut updates for the incremental.
func sliceConstruction() {
	fmt.Println("[1] slice construction: naive per-event advancement vs incremental (identical slices)")
	fmt.Printf("%-5s %6s %4s %12s %12s %8s %6s %6s\n",
		"shape", "|E|", "n", "naive", "incremental", "speedup", "kept", "elim")
	shapes := []struct {
		name          string
		procs, events int
		seed          int64
	}{
		{"wide", 8, 64, 7},
		{"wide", 12, 96, 2},
		{"deep", 3, 300, 11},
		{"deep", 3, 600, 11},
	}
	for _, sh := range shapes {
		comp := sim.Random(sim.DefaultRandomConfig(sh.procs, sh.events), sh.seed)
		// x0 follows a bounded random walk, so the equality conjunction is
		// satisfiable yet eliminates the events outside its last window.
		p := predicate.Conj(
			predicate.VarCmp{Proc: 0, Var: "x0", Op: predicate.EQ, K: 1},
			predicate.VarCmp{Proc: 1, Var: "x0", Op: predicate.EQ, K: 1},
		)
		start := time.Now()
		naive := slice.New(comp, p)
		naiveDt := time.Since(start)
		start = time.Now()
		inc := slice.NewIncremental(comp, p)
		incDt := time.Since(start)
		kept, elim := inc.Counts()
		status := ""
		if !slicesAgree(naive, inc) {
			status = "  MISMATCH"
		}
		fmt.Printf("%-5s %6d %4d %12s %12s %7.1fx %6d %6d%s\n",
			sh.name, comp.TotalEvents(), sh.procs,
			naiveDt.Round(time.Microsecond), incDt.Round(time.Microsecond),
			float64(naiveDt)/float64(incDt), kept, elim, status)
		emit("slice", "construction", map[string]any{
			"shape": sh.name, "events": comp.TotalEvents(), "procs": sh.procs,
			"naive_ns": naiveDt.Nanoseconds(), "incremental_ns": incDt.Nanoseconds(),
			"kept": kept, "eliminated": elim, "agree": slicesAgree(naive, inc),
		})
	}
}

// slicesAgree re-checks (cheaply) that both builders produced the same
// slice: satisfiability, least cut, and per-event J survival.
func slicesAgree(a, b *slice.Slice) bool {
	if a.Satisfiable() != b.Satisfiable() {
		return false
	}
	ak, ae := a.Counts()
	bk, be := b.Counts()
	if ak != bk || ae != be {
		return false
	}
	if !a.Satisfiable() {
		return true
	}
	la, _ := a.Least()
	lb, _ := b.Least()
	return la.Equal(lb)
}

// sliceDetection pits the slice-routed EF(conj ∧ arbitrary) dispatch
// against the unsliced memoized exponential search on the same predicate.
// With a remainder that is false everywhere the unsliced search must
// exhaust the cut lattice before answering; the sliced search only visits
// the factor's sublattice. A second pass uses a remainder that becomes
// true near the top of the lattice, so both verdicts flip to true and the
// agreement is checked on both polarities.
func sliceDetection() {
	// Satisfiable on every workload below (x0 is a bounded random walk),
	// with a slice well below the full lattice.
	factor := predicate.Conj(
		predicate.VarCmp{Proc: 0, Var: "x0", Op: predicate.EQ, K: 2},
		predicate.VarCmp{Proc: 1, Var: "x0", Op: predicate.GE, K: 1},
	)
	never := predicate.Fn{Name: "false", F: func(*computation.Computation, computation.Cut) bool {
		return false
	}}
	fmt.Println("\n[2] slice-routed EF(conj ∧ arbitrary) vs unsliced exponential search")
	fmt.Println("remainder false everywhere: the unsliced search exhausts the lattice,")
	fmt.Println("the sliced search only the factor's sublattice")
	fmt.Printf("%8s %12s %12s %9s %11s %6s %6s\n",
		"|E|", "unsliced", "sliced", "speedup", "slice cuts", "elim", "agree")
	for _, events := range []int{16, 24, 32, 40} {
		comp := sim.Random(sim.DefaultRandomConfig(4, events), 19)
		sliceDetectRow(comp, factor, never, "ef-false")
	}
	fmt.Println("remainder eventually true on an unconstrained process: both find a satisfying cut")
	for _, events := range []int{24, 40} {
		comp := sim.Random(sim.DefaultRandomConfig(4, events), 19)
		top := comp.FinalCut()
		// P3 is unconstrained by the factor, so the slice spans all its
		// positions and some slice cut satisfies the remainder.
		deepP3 := predicate.Fn{Name: "deepP3", F: func(_ *computation.Computation, cut computation.Cut) bool {
			return cut[3] >= top[3]/2
		}}
		sliceDetectRow(comp, factor, deepP3, "ef-true")
	}
}

// sliceDetectRow measures one workload both ways and prints/emits the row.
func sliceDetectRow(comp *computation.Computation, factor predicate.Linear, rest predicate.Predicate, name string) {
	whole := predicate.And{Ps: []predicate.Predicate{factor, rest}}
	start := time.Now()
	unsliced := core.EFArbitrary(comp, whole)
	unslicedDt := time.Since(start)

	f := ctl.EF{F: ctl.And{L: ctl.Atom{P: factor}, R: ctl.Atom{P: rest}}}
	start = time.Now()
	r, err := core.Detect(comp, f)
	slicedDt := time.Since(start)
	if err != nil {
		fmt.Printf("  detect error: %v\n", err)
		return
	}
	status := ""
	if r.Holds != unsliced {
		status = "  MISMATCH"
	}
	if r.Stats.SliceBuild == 0 {
		status += "  NOT SLICED (" + r.Algorithm + ")"
	}
	fmt.Printf("%8d %12s %12s %8.1fx %11d %6d %6v%s\n",
		comp.TotalEvents(), unslicedDt.Round(time.Microsecond), slicedDt.Round(time.Microsecond),
		float64(unslicedDt)/float64(slicedDt),
		r.Stats.SliceCutsEnumerated, r.Stats.SliceEventsEliminated, r.Holds == unsliced, status)
	emit("slice", name, map[string]any{
		"events": comp.TotalEvents(), "unsliced_ns": unslicedDt.Nanoseconds(),
		"sliced_ns": slicedDt.Nanoseconds(), "slice_cuts": r.Stats.SliceCutsEnumerated,
		"events_eliminated": r.Stats.SliceEventsEliminated,
		"slice_build_ns":    r.Stats.SliceBuild.Nanoseconds(),
		"holds":             r.Holds, "agree": r.Holds == unsliced,
	})
}

// sliceBoundedState measures the per-session state of bounded monitors
// (slice cursors only) against unbounded ones (full event prefix) on the
// same traces: one EF watch that fires early (the latched cursor retains
// nothing) and one that never fires (the live cursor retains only the
// slice frontier).
func sliceBoundedState() {
	fmt.Println("\n[3] bounded monitors: slice-cursor state vs full prefix retention")
	fmt.Printf("%8s %8s %11s %9s %10s\n", "|E|", "fired", "unbounded", "bounded", "reduction")
	for _, events := range []int{1000, 5000, 20000} {
		comp := sim.Random(sim.DefaultRandomConfig(4, events), 21)
		run := func(bounded bool) (int, bool) {
			var m *online.Monitor
			if bounded {
				m = online.NewBoundedMonitor(comp.N())
			} else {
				m = online.NewMonitor(comp.N())
			}
			fires := m.WatchEF(
				online.Cmp(0, "x0", ">=", 2),
				online.Cmp(1, "x0", ">=", 2),
				online.Cmp(2, "x0", ">=", 2),
			)
			// Unsatisfiable on P3 — this watch never latches, so its
			// cursor stays live for the whole trace.
			m.WatchEF(
				online.Cmp(2, "x0", ">=", 1),
				online.Cmp(3, "x0", ">=", events),
			)
			feedAll(comp, m, func(int) {})
			return m.Retained(), fires.Fired()
		}
		full, fired := run(false)
		bnd, _ := run(true)
		fmt.Printf("%8d %8v %11d %9d %9.0fx\n",
			events, fired, full, bnd, float64(full)/float64(max(bnd, 1)))
		emit("slice", "bounded-state", map[string]any{
			"events": events, "fired": fired,
			"unbounded_retained": full, "bounded_retained": bnd,
		})
	}
}

package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/ctl"
	"repro/internal/sim"
	"repro/internal/spanhb"
)

// runSpanhb measures the OTel-style span ingest path: JSONL decode rate,
// the cost of lowering spans onto the happened-before model (toposort +
// vector-clock construction), and end-to-end detection over the lowered
// computation. The shape to reproduce: decode and lowering are linear in
// the span count, so spans/s stays flat as traces grow, and detection
// cost is governed by the lowered computation exactly as in Table 1.
func runSpanhb() {
	fmt.Printf("%-26s %8s %8s %8s %12s %12s %10s\n",
		"workload", "spans", "events", "edges", "decode/s", "lower/s", "detect")
	for _, cfg := range []sim.SpanConfig{
		{Services: 4, Requests: 8, Depth: 2, Fanout: 2, Seed: 1},
		{Services: 4, Requests: 32, Depth: 2, Fanout: 2, Seed: 1},
		{Services: 8, Requests: 32, Depth: 3, Fanout: 2, Seed: 1},
	} {
		name := fmt.Sprintf("svc=%d req=%d d=%d f=%d", cfg.Services, cfg.Requests, cfg.Depth, cfg.Fanout)
		spans, err := sim.Spans(cfg)
		if err != nil {
			fmt.Printf("%-26s ERROR %v\n", name, err)
			continue
		}
		var buf bytes.Buffer
		enc := json.NewEncoder(&buf)
		for _, s := range spans {
			if err := enc.Encode(s); err != nil {
				panic(err)
			}
		}
		jsonl := buf.Bytes()

		decStart := time.Now()
		decoded, err := spanhb.Decode(bytes.NewReader(jsonl))
		decDur := time.Since(decStart)
		if err != nil {
			fmt.Printf("%-26s ERROR %v\n", name, err)
			continue
		}

		lowStart := time.Now()
		r, err := spanhb.Lower(decoded, spanhb.Options{})
		lowDur := time.Since(lowStart)
		if err != nil {
			fmt.Printf("%-26s ERROR %v\n", name, err)
			continue
		}

		f := ctl.MustParse("EF(inflight@P1 >= 2)")
		detStart := time.Now()
		res, err := core.Detect(r.Comp, f)
		detDur := time.Since(detStart)
		if err != nil {
			fmt.Printf("%-26s ERROR %v\n", name, err)
			continue
		}

		decRate := rate(len(decoded), decDur)
		lowRate := rate(r.Spans, lowDur)
		fmt.Printf("%-26s %8d %8d %8d %12.0f %12.0f %10s\n",
			name, r.Spans, r.Events, r.Edges, decRate, lowRate, detDur.Round(time.Microsecond))
		emit("spanhb", name, map[string]any{
			"services": cfg.Services, "requests": cfg.Requests,
			"spans": r.Spans, "events": r.Events, "edges": r.Edges,
			"skew_dropped": r.SkewDropped,
			"decode_per_s": decRate, "lower_per_s": lowRate,
			"detect_ns": detDur.Nanoseconds(), "holds": res.Holds,
		})
	}
}

// rate guards against a sub-resolution duration reading as infinite.
func rate(n int, d time.Duration) float64 {
	if d <= 0 {
		d = time.Nanosecond
	}
	return float64(n) / d.Seconds()
}

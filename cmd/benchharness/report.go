package main

import (
	"encoding/json"
	"io"
)

// Record is one machine-readable measurement row emitted by an experiment.
// With -json the harness collects every Record and dumps the list to the
// real stdout at the end (human tables are diverted to stderr), so CI and
// notebooks can ingest results without scraping tables.
type Record struct {
	Experiment string         `json:"experiment"`
	Name       string         `json:"name"`
	Fields     map[string]any `json:"fields"`
}

// recorder is nil in plain-text mode, making emit a no-op.
var recorder *[]Record

// emit appends a measurement row when -json is active.
func emit(experiment, name string, fields map[string]any) {
	if recorder == nil {
		return
	}
	*recorder = append(*recorder, Record{Experiment: experiment, Name: name, Fields: fields})
}

// dumpJSON writes the collected records as an indented JSON array.
func dumpJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	recs := *recorder
	if recs == nil {
		recs = []Record{}
	}
	return enc.Encode(recs)
}

package main

import (
	"fmt"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/predicate"
	"repro/internal/sim"
)

// runParallel measures the parallel execution layer on the sweep-shaped
// algorithms. The AG workload is the full-sweep worst case — an invariant
// that actually holds, so Algorithm A2 must evaluate every one of the |E|
// meet-irreducible cuts — and the EU workload drives Algorithm A3's
// per-frontier-branch EG checks. Every parallel run is checked against the
// sequential verdict and evidence before its time is reported.
//
// Speedup is relative to the workers=1 run in this process. On a
// single-core machine (GOMAXPROCS=1) the expected speedup is ~1× — the
// table then measures the overhead of the worker pool, not its benefit —
// so the GOMAXPROCS of the measuring machine is printed and recorded with
// every row.
func runParallel() {
	gmp := runtime.GOMAXPROCS(0)
	fmt.Printf("GOMAXPROCS=%d; speedups are relative to workers=1 on this machine\n", gmp)

	// AG full sweep: x0 >= 0 holds at every cut of the generator's
	// computations, so A2 cannot stop early.
	agPred := predicate.Conj(predicate.VarCmp{Proc: 0, Var: "x0", Op: predicate.GE, K: 0})
	fmt.Printf("%-28s %8s %8s %12s %9s\n", "workload", "|E|", "workers", "time", "speedup")
	for _, events := range []int{4000, 16000} {
		comp := sim.Random(sim.DefaultRandomConfig(4, events), 11)
		seqCex, seqOK := core.AGLinear(comp, agPred)
		var base time.Duration
		for _, w := range []int{1, 2, 4, 8} {
			start := time.Now()
			cex, ok := core.AGLinearParallel(comp, agPred, w)
			d := time.Since(start)
			if ok != seqOK || (cex == nil) != (seqCex == nil) {
				fmt.Printf("  MISMATCH: workers=%d AG verdict %v, sequential %v\n", w, ok, seqOK)
				return
			}
			if w == 1 {
				base = d
			}
			speedup := float64(base) / float64(d)
			fmt.Printf("%-28s %8d %8d %12s %8.2fx\n", "AG full sweep (A2)", events, w, d.Round(time.Microsecond), speedup)
			emit("parallel", "ag-sweep", map[string]any{
				"events": events, "workers": w, "gomaxprocs": gmp,
				"ns": d.Nanoseconds(), "speedup": speedup, "holds": ok,
			})
		}
	}

	// EU: p holds broadly, q is reached late, so step 1 advances far and
	// step 2 runs an EG check per frontier branch of I_q.
	for _, procs := range []int{4, 8} {
		events := 8000
		comp := sim.Random(sim.DefaultRandomConfig(procs, events), 7)
		p := predicate.Conj(predicate.VarCmp{Proc: 0, Var: "x0", Op: predicate.GE, K: 0})
		q := predicate.Terminated{}
		seqPath, seqOK := core.EUConjLinear(comp, p, q)
		var base time.Duration
		for _, w := range []int{1, 2, 4, 8} {
			start := time.Now()
			path, ok := core.EUConjLinearParallel(comp, p, q, w)
			d := time.Since(start)
			if ok != seqOK || len(path) != len(seqPath) {
				fmt.Printf("  MISMATCH: workers=%d EU verdict %v/%d, sequential %v/%d\n",
					w, ok, len(path), seqOK, len(seqPath))
				return
			}
			if w == 1 {
				base = d
			}
			speedup := float64(base) / float64(d)
			name := fmt.Sprintf("EU frontier EGs (A3), n=%d", procs)
			fmt.Printf("%-28s %8d %8d %12s %8.2fx\n", name, events, w, d.Round(time.Microsecond), speedup)
			emit("parallel", "eu-branches", map[string]any{
				"events": events, "procs": procs, "workers": w, "gomaxprocs": gmp,
				"ns": d.Nanoseconds(), "speedup": speedup, "holds": ok,
			})
		}
	}
}

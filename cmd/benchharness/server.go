package main

import (
	"context"
	"fmt"
	"net"
	"time"

	"repro/internal/computation"
	"repro/internal/obs"
	"repro/internal/online"
	"repro/internal/server"
	"repro/internal/server/client"
	"repro/internal/sim"
)

// runServer measures the networked detection service over loopback:
// ingest throughput (events/s through TCP + JSON + the session queue, vs
// the in-process monitor as the no-network baseline) and verdict push
// latency — the wall-clock gap between the client writing the
// determining event and the verdict frame arriving back.
func runServer() {
	fmt.Println("hbserver over loopback TCP: streamed EF watch vs in-process monitor")
	fmt.Printf("%8s %12s %14s %14s %16s\n", "|E|", "ingest", "events/s", "in-process", "verdict latency")
	for _, events := range []int{200, 1000, 5000, 20000} {
		comp := sim.Random(sim.DefaultRandomConfig(4, events), 21)
		pred := "conj(x0@P1 >= 2, x0@P2 >= 2, x0@P3 >= 2)"

		// Baseline: the same watch fed in-process, no network, no JSON.
		mon := online.NewMonitor(comp.N())
		mon.WatchEF(
			online.Cmp(0, "x0", ">=", 2),
			online.Cmp(1, "x0", ">=", 2),
			online.Cmp(2, "x0", ">=", 2),
		)
		localStart := time.Now()
		feedAll(comp, mon, nil)
		localDt := time.Since(localStart)

		srv := server.New(server.Config{Registry: obs.NewRegistry()})
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			panic(err)
		}
		go srv.Serve(ln) //nolint:errcheck // closed by Shutdown
		sess, err := client.Dial(ln.Addr().String(), client.Config{
			Processes: comp.N(),
			Watches:   []server.Watch{{Op: "EF", Pred: pred}},
		})
		if err != nil {
			panic(err)
		}

		// Stamp each verdict frame as it arrives; with sendTimes below,
		// latency = determining event written → verdict frame decoded,
		// both measured at the client.
		type stamped struct {
			fr server.ServerFrame
			at time.Time
		}
		arrivals := make(chan stamped, 8)
		go func() {
			defer close(arrivals)
			for {
				select {
				case fr := <-sess.Verdicts():
					if fr.Type == server.FrameVerdict {
						arrivals <- stamped{fr, time.Now()}
					}
				case <-sess.Done():
					return
				}
			}
		}()

		// Stream the linearization, stamping each event's write time so
		// the verdict frame's Event index recovers when its determining
		// event left the client.
		sendTimes := make([]time.Time, 0, comp.TotalEvents())
		start := time.Now()
		streamComputation(comp, sess, &sendTimes)
		if _, err := sess.Snapshot("EF(" + pred + ")"); err != nil { // barrier: all applied
			panic(err)
		}
		dt := time.Since(start)

		gb, err := sess.Close()
		if err != nil {
			panic(err)
		}
		if gb.Events != comp.TotalEvents() {
			panic(fmt.Sprintf("server accounting: %d events (want %d)", gb.Events, comp.TotalEvents()))
		}
		verdictLat := time.Duration(-1)
		for v := range arrivals {
			if v.fr.Event >= 1 && v.fr.Event <= len(sendTimes) {
				verdictLat = v.at.Sub(sendTimes[v.fr.Event-1])
			}
		}
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		srv.Shutdown(ctx) //nolint:errcheck
		cancel()

		rate := float64(events) / dt.Seconds()
		lat := "no verdict"
		if verdictLat >= 0 {
			lat = verdictLat.Round(time.Microsecond).String()
		}
		fmt.Printf("%8d %12s %14.0f %14s %16s\n",
			events, dt.Round(time.Microsecond), rate, localDt.Round(time.Microsecond), lat)
		emit("server", "ingest", map[string]any{
			"events": events, "ingest_ns": dt.Nanoseconds(),
			"events_per_sec": rate, "inprocess_ns": localDt.Nanoseconds(),
			"verdict_latency_ns": verdictLat.Nanoseconds(),
		})
	}
}

// streamComputation replays comp's linearization into a wire session,
// recording the write time of each event.
func streamComputation(comp *computation.Computation, sess *client.Session, sendTimes *[]time.Time) {
	for p := 0; p < comp.N(); p++ {
		for _, name := range comp.Vars(p) {
			if v, _ := comp.Value(p, 0, name); v != 0 {
				sess.SetInitial(p, name, v)
			}
		}
	}
	seq := comp.SomeLinearization()
	for s := 1; s < len(seq); s++ {
		prev, cur := seq[s-1], seq[s]
		for p := range cur {
			if cur[p] <= prev[p] {
				continue
			}
			e := comp.Event(p, cur[p])
			*sendTimes = append(*sendTimes, time.Now())
			switch e.Kind {
			case computation.Internal:
				sess.Internal(p, e.Sets)
			case computation.Send:
				sess.SendMsg(p, e.Msg, e.Sets)
			case computation.Receive:
				sess.Receive(p, e.Msg, e.Sets)
			}
			break
		}
	}
}

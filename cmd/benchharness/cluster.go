package main

import (
	"context"
	"fmt"
	"net"
	"time"

	"repro/internal/cluster"
	"repro/internal/computation"
	"repro/internal/faults"
	"repro/internal/obs"
	"repro/internal/server"
	"repro/internal/server/client"
	"repro/internal/sim"
)

// runCluster measures what the multi-node detection cluster costs and
// what it buys: the same streamed EF watch is ingested (a) by a plain
// single-node resumable session — the baseline, (b) by a keyed session
// on a 3-node cluster with replication factor 2 — the steady-state
// replication overhead (acks gated on the replica's durability
// watermark), and (c) by a keyed session whose home node is killed once
// half the events are in flight — the failover path, reporting the
// client's measured outage and the frames it replayed onto the replica.
// All three runs must deliver every event exactly once.
func runCluster() {
	fmt.Println("detection cluster: replication overhead and failover cost (3 nodes, 2 copies, seed 1)")
	fmt.Printf("%12s %10s %12s %12s %10s %12s %12s\n",
		"profile", "events", "ingest", "overhead", "resumes", "replayed", "outage")
	const events = 2000
	comp := sim.Random(sim.DefaultRandomConfig(4, events), 21)
	pred := "conj(x0@P1 >= 2, x0@P2 >= 2, x0@P3 >= 2)"

	var cleanDt time.Duration
	for _, tc := range []struct {
		name     string
		nodes    int
		failover bool
	}{
		{"standalone", 1, false},
		{"replicated", 3, false},
		{"failover", 3, true},
	} {
		dt, stats := clusterIngest(comp, pred, tc.nodes, tc.failover)
		if tc.name == "standalone" {
			cleanDt = dt
		}
		overhead := "baseline"
		if tc.name != "standalone" && cleanDt > 0 {
			overhead = fmt.Sprintf("%.2fx", float64(dt)/float64(cleanDt))
		}
		fmt.Printf("%12s %10d %12s %12s %10d %12d %12s\n",
			tc.name, comp.TotalEvents(), dt.Round(time.Microsecond), overhead,
			stats.Reconnects, stats.Replayed, stats.Outage.Round(time.Microsecond))
		emit("cluster", tc.name, map[string]any{
			"events": comp.TotalEvents(), "ingest_ns": dt.Nanoseconds(),
			"reconnects": stats.Reconnects, "replayed": stats.Replayed,
			"outage_ns": stats.Outage.Nanoseconds(),
		})
	}
	runClusterDurability()
}

// runClusterDurability prices the ack-gate modes and the drain handoff:
// the same keyed ingest runs once per durability mode with the
// session's only replica bounced mid-stream (a ~60ms outage), and once
// with the owner drained mid-stream. Durable mode pays for the outage
// in stalled client acks — the max-ack-stall column — where available
// mode keeps acking and pays in the loss window instead; the handoff
// row reports what a planned node removal costs end to end (kick,
// watermark wait, epoch-bumped transfer, client redirect).
func runClusterDurability() {
	fmt.Println("\ncluster durability: ack-gate pricing across a ~60ms replica outage, and drain handoff cost")
	fmt.Printf("%16s %10s %12s %14s %12s %10s\n",
		"profile", "events", "ingest", "max ack stall", "handoff", "resumes")
	const events = 1000
	comp := sim.Random(sim.DefaultRandomConfig(4, events), 23)
	pred := "conj(x0@P1 >= 2, x0@P2 >= 2, x0@P3 >= 2)"
	for _, tc := range []struct {
		name   string
		mode   string
		outage bool
		drain  bool
	}{
		{"available", "available", true, false},
		{"durable", "durable", true, false},
		{"drain-handoff", "available", false, true},
	} {
		dt, stall, handoff, stats := durabilityIngest(comp, pred, tc.mode, tc.outage, tc.drain)
		hcol := "-"
		if tc.drain {
			hcol = handoff.Round(time.Microsecond).String()
		}
		fmt.Printf("%16s %10d %12s %14s %12s %10d\n",
			tc.name, comp.TotalEvents(), dt.Round(time.Microsecond),
			stall.Round(time.Microsecond), hcol, stats.Reconnects)
		emit("cluster-durability", tc.name, map[string]any{
			"events": comp.TotalEvents(), "ingest_ns": dt.Nanoseconds(),
			"max_ack_stall_ns": stall.Nanoseconds(), "handoff_ns": handoff.Nanoseconds(),
			"reconnects": stats.Reconnects, "replayed": stats.Replayed,
		})
	}
}

// waitLinksUp blocks until every replication link of the node reports
// connected (so a drain has a live replica to hand off to).
func waitLinksUp(node *cluster.Node) {
	deadline := time.Now().Add(5 * time.Second)
	for {
		st, _ := node.DebugState().(cluster.DebugCluster)
		up := len(st.Links) > 0
		for _, l := range st.Links {
			if !l.Connected {
				up = false
			}
		}
		if up {
			return
		}
		if time.Now().After(deadline) {
			panic("replication links never came up")
		}
		time.Sleep(time.Millisecond)
	}
}

// durabilityIngest streams comp through one keyed session (mode set via
// the hello's durability override) on a 3-node cluster. With outage set
// the key's replica is killed once half the events are in flight and
// restarted 60ms later; with drain set the key's owner is drained at
// the same point and the drain wall-clock returned. The max-ack-stall
// result is the longest interval the client's acked watermark sat still
// while frames were outstanding.
func durabilityIngest(comp *computation.Computation, pred, mode string, outage, drain bool) (time.Duration, time.Duration, time.Duration, client.Stats) {
	const n = 3
	lns := make([]net.Listener, n)
	kls := make([]*faults.KillableListener, n)
	ids := make([]string, n)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			panic(err)
		}
		lns[i] = ln
		kls[i] = faults.WrapKillable(ln)
		ids[i] = ln.Addr().String()
	}
	nodes := make([]*cluster.Node, n)
	for i := range nodes {
		node, err := cluster.New(
			server.Config{Registry: obs.NewRegistry(), AckEvery: 4, IdleTimeout: 10 * time.Second},
			cluster.NodeConfig{Self: ids[i], Peers: ids, Replicas: 2, Registry: obs.NewRegistry()},
		)
		if err != nil {
			panic(err)
		}
		nodes[i] = node
		go node.Serve(kls[i]) //nolint:errcheck // closed by Shutdown
	}

	const key = "bench-durability"
	succ := nodes[0].Ring().Successors(key, 2)
	var ownerNode *cluster.Node
	var replicaKL *faults.KillableListener
	for i, id := range ids {
		if id == succ[0] {
			ownerNode = nodes[i]
		}
		if id == succ[1] {
			replicaKL = kls[i]
		}
	}

	sess, err := client.Dial("", client.Config{
		Processes:   comp.N(),
		Watches:     []server.Watch{{Op: "EF", Pred: pred}},
		Key:         key,
		Peers:       ids,
		Durability:  mode,
		Reconnect:   true,
		DialTimeout: 2 * time.Second,
		BackoffBase: 2 * time.Millisecond,
		BackoffMax:  50 * time.Millisecond,
		MaxAttempts: 60,
		JitterSeed:  1,
	})
	if err != nil {
		panic(err)
	}

	// Sample the acked watermark: the widest flat spot is the price the
	// gate charged the client during the outage.
	stallc := make(chan time.Duration, 1)
	stopSampling := make(chan struct{})
	go func() {
		var maxStall time.Duration
		last := sess.Acked()
		lastAt := time.Now()
		tick := time.NewTicker(time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-stopSampling:
				stallc <- maxStall
				return
			case <-tick.C:
				if a := sess.Acked(); a != last {
					last, lastAt = a, time.Now()
				} else if d := time.Since(lastAt); d > maxStall {
					maxStall = d
				}
			}
		}
	}()

	faultAt := comp.TotalEvents() / 2
	var handoff time.Duration
	start := time.Now()
	streamed, inits := 0, 0
	for p := 0; p < comp.N(); p++ {
		for _, name := range comp.Vars(p) {
			if v, _ := comp.Value(p, 0, name); v != 0 {
				sess.SetInitial(p, name, v)
				inits++
			}
		}
	}
	seq := comp.SomeLinearization()
	for s := 1; s < len(seq); s++ {
		prev, cur := seq[s-1], seq[s]
		for p := range cur {
			if cur[p] <= prev[p] {
				continue
			}
			e := comp.Event(p, cur[p])
			switch e.Kind {
			case computation.Internal:
				sess.Internal(p, e.Sets)
			case computation.Send:
				sess.SendMsg(p, e.Msg, e.Sets)
			case computation.Receive:
				sess.Receive(p, e.Msg, e.Sets)
			}
			if streamed++; streamed == faultAt {
				switch {
				case outage:
					replicaKL.Kill()
					time.AfterFunc(60*time.Millisecond, replicaKL.Restart)
				case drain:
					// The handoff needs a live replica link holding the
					// full log; at full ingest speed the first link dial
					// may still be in flight, so wait it out.
					waitLinksUp(ownerNode)
					ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
					t0 := time.Now()
					if err := ownerNode.Drain(ctx); err != nil {
						panic(fmt.Sprintf("drain: %v", err))
					}
					handoff = time.Since(t0)
					cancel()
				}
			}
			break
		}
	}
	if _, err := sess.Snapshot("EF(" + pred + ")"); err != nil { // barrier: all applied
		panic(err)
	}
	// Wait out the acked watermark too (modulo the AckEvery cadence):
	// the durable gate's price is paid here — an available-mode run is
	// already caught up, a durable run rides out the replica outage.
	finalSeq := int64(inits + comp.TotalEvents())
	ackDeadline := time.Now().Add(10 * time.Second)
	for sess.Acked() < finalSeq-4 {
		if time.Now().After(ackDeadline) {
			panic(fmt.Sprintf("acked watermark stuck at %d/%d (mode=%s)", sess.Acked(), finalSeq, mode))
		}
		time.Sleep(time.Millisecond)
	}
	dt := time.Since(start)

	gb, err := sess.Close()
	if err != nil {
		panic(err)
	}
	if gb.Events != comp.TotalEvents() {
		panic(fmt.Sprintf("exactly-once violated (mode=%s outage=%v drain=%v): goodbye %d events (want %d)",
			mode, outage, drain, gb.Events, comp.TotalEvents()))
	}
	close(stopSampling)
	stall := <-stallc
	stats := sess.Stats()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	for _, node := range nodes {
		node.Shutdown(ctx) //nolint:errcheck
	}
	cancel()
	return dt, stall, handoff, stats
}

// clusterIngest streams comp through one keyed session on an n-node
// cluster (n=1 keeps the hooks installed but leaves nothing to replicate
// to, isolating the replication cost in the comparison) and returns the
// ingest wall-clock and the client's reconnect stats. With failover set,
// the session's home node is killed once half the events are in flight.
func clusterIngest(comp *computation.Computation, pred string, n int, failover bool) (time.Duration, client.Stats) {
	lns := make([]net.Listener, n)
	kls := make([]*faults.KillableListener, n)
	ids := make([]string, n)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			panic(err)
		}
		lns[i] = ln
		kls[i] = faults.WrapKillable(ln)
		ids[i] = ln.Addr().String()
	}
	nodes := make([]*cluster.Node, n)
	for i := range nodes {
		node, err := cluster.New(
			server.Config{Registry: obs.NewRegistry(), AckEvery: 4, IdleTimeout: 10 * time.Second},
			cluster.NodeConfig{Self: ids[i], Peers: ids, Replicas: 2, Registry: obs.NewRegistry()},
		)
		if err != nil {
			panic(err)
		}
		nodes[i] = node
		go node.Serve(kls[i]) //nolint:errcheck // closed by Shutdown
	}

	const key = "bench-cluster"
	sess, err := client.Dial("", client.Config{
		Processes:   comp.N(),
		Watches:     []server.Watch{{Op: "EF", Pred: pred}},
		Key:         key,
		Peers:       ids,
		Reconnect:   true,
		DialTimeout: 2 * time.Second,
		BackoffBase: 2 * time.Millisecond,
		BackoffMax:  50 * time.Millisecond,
		MaxAttempts: 60,
		JitterSeed:  1,
	})
	if err != nil {
		panic(err)
	}

	killAt := -1
	if failover {
		killAt = comp.TotalEvents() / 2
	}
	owner := nodes[0].Ring().Owner(key)
	start := time.Now()
	streamed := 0
	for p := 0; p < comp.N(); p++ {
		for _, name := range comp.Vars(p) {
			if v, _ := comp.Value(p, 0, name); v != 0 {
				sess.SetInitial(p, name, v)
			}
		}
	}
	seq := comp.SomeLinearization()
	for s := 1; s < len(seq); s++ {
		prev, cur := seq[s-1], seq[s]
		for p := range cur {
			if cur[p] <= prev[p] {
				continue
			}
			e := comp.Event(p, cur[p])
			switch e.Kind {
			case computation.Internal:
				sess.Internal(p, e.Sets)
			case computation.Send:
				sess.SendMsg(p, e.Msg, e.Sets)
			case computation.Receive:
				sess.Receive(p, e.Msg, e.Sets)
			}
			if streamed++; streamed == killAt {
				for i, id := range ids {
					if id == owner {
						kls[i].Kill()
					}
				}
			}
			break
		}
	}
	if _, err := sess.Snapshot("EF(" + pred + ")"); err != nil { // barrier: all applied
		panic(err)
	}
	dt := time.Since(start)
	stats := sess.Stats()

	gb, err := sess.Close()
	if err != nil {
		panic(err)
	}
	if gb.Events != comp.TotalEvents() {
		panic(fmt.Sprintf("exactly-once violated (nodes=%d failover=%v): goodbye %d events (want %d)",
			n, failover, gb.Events, comp.TotalEvents()))
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	for _, node := range nodes {
		node.Shutdown(ctx) //nolint:errcheck
	}
	cancel()
	return dt, stats
}

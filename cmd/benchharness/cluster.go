package main

import (
	"context"
	"fmt"
	"net"
	"time"

	"repro/internal/cluster"
	"repro/internal/computation"
	"repro/internal/faults"
	"repro/internal/obs"
	"repro/internal/server"
	"repro/internal/server/client"
	"repro/internal/sim"
)

// runCluster measures what the multi-node detection cluster costs and
// what it buys: the same streamed EF watch is ingested (a) by a plain
// single-node resumable session — the baseline, (b) by a keyed session
// on a 3-node cluster with replication factor 2 — the steady-state
// replication overhead (acks gated on the replica's durability
// watermark), and (c) by a keyed session whose home node is killed once
// half the events are in flight — the failover path, reporting the
// client's measured outage and the frames it replayed onto the replica.
// All three runs must deliver every event exactly once.
func runCluster() {
	fmt.Println("detection cluster: replication overhead and failover cost (3 nodes, 2 copies, seed 1)")
	fmt.Printf("%12s %10s %12s %12s %10s %12s %12s\n",
		"profile", "events", "ingest", "overhead", "resumes", "replayed", "outage")
	const events = 2000
	comp := sim.Random(sim.DefaultRandomConfig(4, events), 21)
	pred := "conj(x0@P1 >= 2, x0@P2 >= 2, x0@P3 >= 2)"

	var cleanDt time.Duration
	for _, tc := range []struct {
		name     string
		nodes    int
		failover bool
	}{
		{"standalone", 1, false},
		{"replicated", 3, false},
		{"failover", 3, true},
	} {
		dt, stats := clusterIngest(comp, pred, tc.nodes, tc.failover)
		if tc.name == "standalone" {
			cleanDt = dt
		}
		overhead := "baseline"
		if tc.name != "standalone" && cleanDt > 0 {
			overhead = fmt.Sprintf("%.2fx", float64(dt)/float64(cleanDt))
		}
		fmt.Printf("%12s %10d %12s %12s %10d %12d %12s\n",
			tc.name, comp.TotalEvents(), dt.Round(time.Microsecond), overhead,
			stats.Reconnects, stats.Replayed, stats.Outage.Round(time.Microsecond))
		emit("cluster", tc.name, map[string]any{
			"events": comp.TotalEvents(), "ingest_ns": dt.Nanoseconds(),
			"reconnects": stats.Reconnects, "replayed": stats.Replayed,
			"outage_ns": stats.Outage.Nanoseconds(),
		})
	}
}

// clusterIngest streams comp through one keyed session on an n-node
// cluster (n=1 keeps the hooks installed but leaves nothing to replicate
// to, isolating the replication cost in the comparison) and returns the
// ingest wall-clock and the client's reconnect stats. With failover set,
// the session's home node is killed once half the events are in flight.
func clusterIngest(comp *computation.Computation, pred string, n int, failover bool) (time.Duration, client.Stats) {
	lns := make([]net.Listener, n)
	kls := make([]*faults.KillableListener, n)
	ids := make([]string, n)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			panic(err)
		}
		lns[i] = ln
		kls[i] = faults.WrapKillable(ln)
		ids[i] = ln.Addr().String()
	}
	nodes := make([]*cluster.Node, n)
	for i := range nodes {
		node, err := cluster.New(
			server.Config{Registry: obs.NewRegistry(), AckEvery: 4, IdleTimeout: 10 * time.Second},
			cluster.NodeConfig{Self: ids[i], Peers: ids, Replicas: 2, Registry: obs.NewRegistry()},
		)
		if err != nil {
			panic(err)
		}
		nodes[i] = node
		go node.Serve(kls[i]) //nolint:errcheck // closed by Shutdown
	}

	const key = "bench-cluster"
	sess, err := client.Dial("", client.Config{
		Processes:   comp.N(),
		Watches:     []server.Watch{{Op: "EF", Pred: pred}},
		Key:         key,
		Peers:       ids,
		Reconnect:   true,
		DialTimeout: 2 * time.Second,
		BackoffBase: 2 * time.Millisecond,
		BackoffMax:  50 * time.Millisecond,
		MaxAttempts: 60,
		JitterSeed:  1,
	})
	if err != nil {
		panic(err)
	}

	killAt := -1
	if failover {
		killAt = comp.TotalEvents() / 2
	}
	owner := nodes[0].Ring().Owner(key)
	start := time.Now()
	streamed := 0
	for p := 0; p < comp.N(); p++ {
		for _, name := range comp.Vars(p) {
			if v, _ := comp.Value(p, 0, name); v != 0 {
				sess.SetInitial(p, name, v)
			}
		}
	}
	seq := comp.SomeLinearization()
	for s := 1; s < len(seq); s++ {
		prev, cur := seq[s-1], seq[s]
		for p := range cur {
			if cur[p] <= prev[p] {
				continue
			}
			e := comp.Event(p, cur[p])
			switch e.Kind {
			case computation.Internal:
				sess.Internal(p, e.Sets)
			case computation.Send:
				sess.SendMsg(p, e.Msg, e.Sets)
			case computation.Receive:
				sess.Receive(p, e.Msg, e.Sets)
			}
			if streamed++; streamed == killAt {
				for i, id := range ids {
					if id == owner {
						kls[i].Kill()
					}
				}
			}
			break
		}
	}
	if _, err := sess.Snapshot("EF(" + pred + ")"); err != nil { // barrier: all applied
		panic(err)
	}
	dt := time.Since(start)
	stats := sess.Stats()

	gb, err := sess.Close()
	if err != nil {
		panic(err)
	}
	if gb.Events != comp.TotalEvents() {
		panic(fmt.Sprintf("exactly-once violated (nodes=%d failover=%v): goodbye %d events (want %d)",
			n, failover, gb.Events, comp.TotalEvents()))
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	for _, node := range nodes {
		node.Shutdown(ctx) //nolint:errcheck
	}
	cancel()
	return dt, stats
}

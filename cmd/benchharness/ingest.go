package main

import (
	"context"
	"fmt"
	"net"
	"runtime"
	"runtime/debug"
	"time"

	"repro/internal/computation"
	"repro/internal/obs"
	"repro/internal/server"
	"repro/internal/server/client"
	"repro/internal/sim"
)

// runIngest compares the two ingest encodings head to head on the same
// workload: NDJSON with one frame (and one write) per event, versus the
// binary encoding batching events into length-prefixed frames — one
// write and one ack per batch, decoded straight into the columnar
// batch representation with pooled buffers and interned variable
// names, no per-event JSON on either side. Reported allocs/event is
// the whole loopback pipeline (client encode + server decode + apply),
// measured as the Mallocs delta across the streaming window.
func runIngest() {
	fmt.Println("ingest path: NDJSON frame-per-event vs binary batched frames (batch=64)")
	fmt.Printf("%8s %9s %12s %14s %12s %9s\n", "|E|", "encoding", "ingest", "events/s", "allocs/ev", "speedup")
	for _, events := range []int{1000, 5000, 20000} {
		comp := sim.Random(sim.DefaultRandomConfig(4, events), 21)
		feed := flatten(comp)
		base := bestIngest(comp, feed, server.EncodingNDJSON, 0)
		bin := bestIngest(comp, feed, server.EncodingBinary, 64)
		speedup := base.dt.Seconds() / bin.dt.Seconds()
		fmt.Printf("%8d %9s %12s %14.0f %12.1f %9s\n",
			events, "ndjson", base.dt.Round(time.Microsecond), base.rate, base.allocsPerEv, "")
		fmt.Printf("%8d %9s %12s %14.0f %12.1f %8.1fx\n",
			events, "binary", bin.dt.Round(time.Microsecond), bin.rate, bin.allocsPerEv, speedup)
		emit("ingest", "encoding", map[string]any{
			"events": events, "batch": 64,
			"ndjson_ns": base.dt.Nanoseconds(), "ndjson_events_per_sec": base.rate,
			"ndjson_allocs_per_event": base.allocsPerEv,
			"binary_ns":               bin.dt.Nanoseconds(), "binary_events_per_sec": bin.rate,
			"binary_allocs_per_event": bin.allocsPerEv,
			"speedup":                 speedup,
		})
	}
}

type ingestResult struct {
	dt          time.Duration
	rate        float64
	allocsPerEv float64
}

// bestIngest runs the measurement three times and keeps the fastest
// pass — the streaming window is short enough that a single GC pause
// or scheduling hiccup otherwise dominates the comparison.
func bestIngest(comp *computation.Computation, feed []wireEvent, enc string, batch int) ingestResult {
	best := measureIngest(comp, feed, enc, batch)
	for i := 0; i < 2; i++ {
		if r := measureIngest(comp, feed, enc, batch); r.dt < best.dt {
			best = r
		}
	}
	return best
}

// wireEvent is one pre-linearized step, so the measured window holds
// only the wire path — no linearization or event lookup inside it.
type wireEvent struct {
	proc int
	kind computation.Kind
	msg  int
	sets map[string]int
}

// flatten precomputes one linearization of comp as a flat replay list.
func flatten(comp *computation.Computation) []wireEvent {
	seq := comp.SomeLinearization()
	feed := make([]wireEvent, 0, comp.TotalEvents())
	for s := 1; s < len(seq); s++ {
		prev, cur := seq[s-1], seq[s]
		for p := range cur {
			if cur[p] <= prev[p] {
				continue
			}
			e := comp.Event(p, cur[p])
			feed = append(feed, wireEvent{proc: p, kind: e.Kind, msg: e.Msg, sets: e.Sets})
			break
		}
	}
	return feed
}

// measureIngest streams feed through one session with the given
// encoding, closing with the usual accounting check, and returns wall
// time, events/s, and allocs/event across the streaming window.
func measureIngest(comp *computation.Computation, feed []wireEvent, enc string, batch int) ingestResult {
	srv := server.New(server.Config{Registry: obs.NewRegistry()})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		panic(err)
	}
	go srv.Serve(ln) //nolint:errcheck // closed by Shutdown
	pred := "conj(x0@P1 >= 2, x0@P2 >= 2, x0@P3 >= 2)"
	sess, err := client.Dial(ln.Addr().String(), client.Config{
		Processes: comp.N(),
		Watches:   []server.Watch{{Op: "EF", Pred: pred}},
		Encoding:  enc,
		BatchSize: batch,
	})
	if err != nil {
		panic(err)
	}
	go func() { // drain verdict pushes so the reader never stalls
		for {
			select {
			case <-sess.Verdicts():
			case <-sess.Done():
				return
			}
		}
	}()
	for p := 0; p < comp.N(); p++ {
		for _, name := range comp.Vars(p) {
			if v, _ := comp.Value(p, 0, name); v != 0 {
				sess.SetInitial(p, name, v)
			}
		}
	}

	// Collect once, then hold off the pacer for the short measured
	// window: the retained workload (the computation's events, clocks,
	// and assignment maps) is large relative to the window's churn, so
	// a mid-window GC cycle re-scanning it swamps the wire-path cost
	// being compared. Both encodings run under the same setting, and
	// allocs/event (a Mallocs delta) is unaffected.
	runtime.GC()
	oldGC := debug.SetGCPercent(-1)
	defer debug.SetGCPercent(oldGC)
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	start := time.Now()
	for _, e := range feed {
		switch e.kind {
		case computation.Internal:
			sess.Internal(e.proc, e.sets)
		case computation.Send:
			sess.SendMsg(e.proc, e.msg, e.sets)
		case computation.Receive:
			sess.Receive(e.proc, e.msg, e.sets)
		}
	}
	if _, err := sess.Snapshot("EF(" + pred + ")"); err != nil { // barrier: all applied
		panic(err)
	}
	dt := time.Since(start)
	runtime.ReadMemStats(&m1)

	gb, err := sess.Close()
	if err != nil {
		panic(err)
	}
	if gb.Events != comp.TotalEvents() {
		panic(fmt.Sprintf("server accounting: %d events (want %d)", gb.Events, comp.TotalEvents()))
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	srv.Shutdown(ctx) //nolint:errcheck
	cancel()
	return ingestResult{
		dt:          dt,
		rate:        float64(len(feed)) / dt.Seconds(),
		allocsPerEv: float64(m1.Mallocs-m0.Mallocs) / float64(len(feed)),
	}
}

package main

import (
	"fmt"
	"time"

	"repro/internal/computation"
	"repro/internal/core"
	"repro/internal/ctl"
	"repro/internal/explore"
	"repro/internal/lattice"
	"repro/internal/predicate"
	"repro/internal/sim"
)

// runTable1 reproduces Table 1: one row per predicate class, one column
// per operator, each cell showing the algorithm the dispatcher selects and
// its measured time on a mid-size workload. On a small instance every cell
// is also cross-checked against the explicit-lattice model checker.
func runTable1() {
	small := sim.Random(sim.DefaultRandomConfig(3, 10), 3)
	big := sim.Random(sim.DefaultRandomConfig(4, 4000), 3)

	smallLat := lattice.MustBuild(small)

	type cell struct {
		class string
		op    string
		make  func(c *computation.Computation) ctl.Formula
	}
	conj := func(c *computation.Computation) predicate.Predicate {
		return predicate.Conj(
			predicate.VarCmp{Proc: 0, Var: "x0", Op: predicate.GE, K: 1},
			predicate.VarCmp{Proc: 1, Var: "x0", Op: predicate.GE, K: 1},
		)
	}
	disj := func(c *computation.Computation) predicate.Predicate {
		return predicate.Disj(
			predicate.VarCmp{Proc: 0, Var: "x0", Op: predicate.GE, K: 1},
			predicate.VarCmp{Proc: 1, Var: "x0", Op: predicate.GE, K: 1},
		)
	}
	stable := func(c *computation.Computation) predicate.Predicate {
		return predicate.Stable{P: predicate.Received{ID: 1}}
	}
	linear := func(c *computation.Computation) predicate.Predicate {
		return predicate.AndLinear{Ps: []predicate.Linear{
			predicate.Conj(predicate.VarCmp{Proc: 0, Var: "x0", Op: predicate.GE, K: 1}),
			predicate.ChannelsEmpty{},
		}}
	}
	regular := func(c *computation.Computation) predicate.Predicate {
		return predicate.ChannelsEmpty{}
	}
	oi := func(c *computation.Computation) predicate.Predicate {
		return predicate.ObserverIndependent{P: disj(c)}
	}
	arb := func(c *computation.Computation) predicate.Predicate {
		return predicate.Fn{Name: "parity", F: func(cc *computation.Computation, cut computation.Cut) bool {
			return cut.Size()%2 == 0 || cut.Equal(cc.FinalCut()) || cut.Size() == 0
		}}
	}

	classes := []struct {
		name string
		make func(c *computation.Computation) predicate.Predicate
		// exponential marks classes whose EG/AG (or all ops) fall back to
		// the exponential solver; those run on the small workload only.
		expOps map[string]bool
	}{
		{"conjunctive", conj, nil},
		{"disjunctive", disj, nil},
		{"stable", stable, nil},
		{"linear", linear, map[string]bool{"AF": true}},
		{"regular", regular, map[string]bool{"AF": true}},
		{"observer-indep", oi, map[string]bool{"EG": true, "AG": true}},
		{"arbitrary", arb, map[string]bool{"EF": true, "AF": true, "EG": true, "AG": true}},
	}
	ops := []struct {
		name string
		wrap func(f ctl.Formula) ctl.Formula
	}{
		{"EF", func(f ctl.Formula) ctl.Formula { return ctl.EF{F: f} }},
		{"AF", func(f ctl.Formula) ctl.Formula { return ctl.AF{F: f} }},
		{"EG", func(f ctl.Formula) ctl.Formula { return ctl.EG{F: f} }},
		{"AG", func(f ctl.Formula) ctl.Formula { return ctl.AG{F: f} }},
	}

	fmt.Printf("workloads: small = %s (lattice %d cuts), large = %s\n\n",
		sim.Describe(small), smallLat.Size(), sim.Describe(big))
	fmt.Printf("%-15s %-3s %-6s %-55s %12s\n", "class", "op", "holds", "algorithm (dispatcher choice)", "time(large)")
	for _, cl := range classes {
		for _, op := range ops {
			fSmall := op.wrap(ctl.Atom{P: cl.make(small)})
			res, err := core.Detect(small, fSmall)
			if err != nil {
				fmt.Printf("%-15s %-3s ERROR %v\n", cl.name, op.name, err)
				continue
			}
			want := explore.Holds(smallLat, fSmall)
			if res.Holds != want {
				fmt.Printf("%-15s %-3s MISMATCH structural=%v lattice=%v\n", cl.name, op.name, res.Holds, want)
				continue
			}
			timing := "exp (small only)"
			largeNS := int64(-1)
			if cl.expOps == nil || !cl.expOps[op.name] {
				fBig := op.wrap(ctl.Atom{P: cl.make(big)})
				start := time.Now()
				if _, err := core.Detect(big, fBig); err == nil {
					largeNS = time.Since(start).Nanoseconds()
					timing = time.Since(start).Round(time.Microsecond).String()
				}
			}
			fmt.Printf("%-15s %-3s %-6v %-55s %12s\n", cl.name, op.name, res.Holds, res.Algorithm, timing)
			emit("table1", cl.name+"/"+op.name, map[string]any{
				"class": cl.name, "op": op.name, "holds": res.Holds,
				"algorithm": res.Algorithm, "time_large_ns": largeNS,
				"cuts_visited": res.Stats.CutsVisited, "predicate_evals": res.Stats.PredicateEvals,
			})
		}
	}
	fmt.Println("\nuntil operators (Section 7):")
	p := predicate.Conj(predicate.VarCmp{Proc: 0, Var: "x0", Op: predicate.LE, K: 3})
	q := predicate.AndLinear{Ps: []predicate.Linear{
		predicate.Conj(predicate.VarCmp{Proc: 1, Var: "x0", Op: predicate.GE, K: 1}),
		predicate.ChannelsEmpty{},
	}}
	euSmall := ctl.EU{P: ctl.Atom{P: p}, Q: ctl.Atom{P: q}}
	res, _ := core.Detect(small, euSmall)
	fmt.Printf("%-19s holds=%-6v %-55s (lattice agrees: %v)\n", "E[p U q] (A3)",
		res.Holds, res.Algorithm, explore.Holds(smallLat, euSmall) == res.Holds)
	start := time.Now()
	core.EUConjLinear(big, p, q)
	fmt.Printf("%-19s time(large)=%s\n", "", time.Since(start).Round(time.Microsecond))
	emit("table1", "EU", map[string]any{
		"op": "EU", "holds": res.Holds, "algorithm": res.Algorithm,
		"time_large_ns": time.Since(start).Nanoseconds(),
	})

	dp, dq := p.Negate(), predicate.Disj(predicate.VarCmp{Proc: 1, Var: "x0", Op: predicate.GE, K: 1})
	auSmall := ctl.AU{P: ctl.Atom{P: dp}, Q: ctl.Atom{P: dq}}
	res, _ = core.Detect(small, auSmall)
	fmt.Printf("%-19s holds=%-6v %-55s (lattice agrees: %v)\n", "A[p U q] (comp.)",
		res.Holds, res.Algorithm, explore.Holds(smallLat, auSmall) == res.Holds)
	start = time.Now()
	core.AUDisjunctive(big, dp, dq)
	fmt.Printf("%-19s time(large)=%s\n", "", time.Since(start).Round(time.Microsecond))
	emit("table1", "AU", map[string]any{
		"op": "AU", "holds": res.Holds, "algorithm": res.Algorithm,
		"time_large_ns": time.Since(start).Nanoseconds(),
	})
}

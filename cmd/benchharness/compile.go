package main

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/computation"
	"repro/internal/core"
	"repro/internal/ctl"
	"repro/internal/pir"
	"repro/internal/predicate"
	"repro/internal/sim"
)

// runCompile measures the predicate IR itself: (a) how much a one-shot
// pir.Compile + Table 1 choice costs per formula, (b) the payoff of the
// bitset lowering — AST-walk vs word-parallel cut evaluation — on
// conjunctive and disjunctive predicates, and (c) end-to-end Detect
// timings on the lowered paths. The compile cost is paid once per Detect;
// the eval cost is paid once per cut visited, so (b) is what moves the
// sweep algorithms.
func runCompile() {
	// (a) compile + dispatch overhead per formula source.
	fmt.Println("-- compile + Table 1 choice, one-shot cost per formula --")
	sources := []struct {
		name, src string
		op        pir.Op
	}{
		{"local", "x0@P1 >= 1", pir.OpEF},
		{"conjunctive", "conj(x0@P1 >= 1, x0@P2 >= 1, x0@P3 >= 1)", pir.OpAG},
		{"disjunctive", "disj(x0@P1 >= 1, x0@P2 >= 1, x0@P3 >= 1)", pir.OpAG},
		{"linear-and", "channelsEmpty && conj(x0@P1 >= 1)", pir.OpEG},
		{"stable", "terminated", pir.OpEF},
	}
	fmt.Printf("%-12s %-45s %-4s %12s\n", "class", "source", "op", "ns/compile")
	for _, s := range sources {
		f, err := ctl.Parse(s.src)
		if err != nil {
			fmt.Printf("%-12s ERROR %v\n", s.name, err)
			continue
		}
		const reps = 2000
		var kind pir.Kind
		start := time.Now()
		for i := 0; i < reps; i++ {
			p, err := pir.Compile(f)
			if err != nil {
				panic(err)
			}
			kind = pir.Choose(s.op, p).Kind
		}
		perOp := time.Since(start).Nanoseconds() / reps
		fmt.Printf("%-12s %-45s %-4s %12d\n", s.name, s.src, s.op, perOp)
		emit("compile", "compile/"+s.name, map[string]any{
			"source": s.src, "op": string(s.op), "ns_per_compile": perOp, "kind": int(kind),
		})
	}

	// (b) AST-walk vs bitset evaluation per cut.
	fmt.Println("\n-- cut evaluation: structural AST walk vs bitset lowering --")
	workloads := []struct {
		name string
		comp *computation.Computation
	}{
		{"small (3 procs × 10 events)", sim.Random(sim.DefaultRandomConfig(3, 10), 3)},
		{"large (4 procs × 4000 events)", sim.Random(sim.DefaultRandomConfig(4, 4000), 3)},
	}
	fmt.Printf("%-30s %-12s %12s %12s %8s\n", "workload", "class", "ast ns/eval", "bits ns/eval", "speedup")
	for _, w := range workloads {
		comp := w.comp
		n := comp.N()
		locals := make([]predicate.LocalPredicate, n)
		for i := 0; i < n; i++ {
			locals[i] = predicate.VarCmp{Proc: i, Var: "x0", Op: predicate.GE, K: 1}
		}
		cuts := randomCuts(comp, 1024)

		conjPred := pir.FromPredicate(predicate.Conjunctive{Locals: locals})
		structuralConj, _ := conjPred.Conjunctive()
		loweredConj, _ := conjPred.Bind(comp).Linear()
		astNS := evalNS(comp, structuralConj, cuts)
		bitNS := evalNS(comp, loweredConj, cuts)
		report(w.name, "conjunctive", astNS, bitNS)

		disjPred := pir.FromPredicate(predicate.Disjunctive{Locals: locals})
		d, _ := disjPred.Disjunctive()
		structuralNeg := d.Negate()
		loweredNeg, _ := disjPred.Bind(comp).DisjunctiveComplement()
		astNS = evalNS(comp, structuralNeg, cuts)
		bitNS = evalNS(comp, loweredNeg, cuts)
		report(w.name, "disjunctive", astNS, bitNS)
	}

	// (c) end-to-end detection on the lowered sweep paths.
	fmt.Println("\n-- end-to-end Detect on the lowered paths (large workload) --")
	big := sim.Random(sim.DefaultRandomConfig(4, 4000), 3)
	formulas := []struct {
		name string
		f    ctl.Formula
	}{
		{"EF conjunctive", ctl.MustParse("EF(conj(x0@P1 >= 1, x0@P2 >= 1, x0@P3 >= 1, x0@P4 >= 1))")},
		{"AG disjunctive", ctl.MustParse("AG(disj(x0@P1 >= 1, x0@P2 >= 1, x0@P3 >= 1, x0@P4 >= 1))")},
		{"AG conjunctive (A2)", ctl.MustParse("AG(conj(x0@P1 >= 0, x0@P2 >= 0))")},
	}
	fmt.Printf("%-22s %-6s %-50s %12s\n", "formula", "holds", "algorithm", "time")
	for _, c := range formulas {
		start := time.Now()
		res, err := core.Detect(big, c.f)
		if err != nil {
			fmt.Printf("%-22s ERROR %v\n", c.name, err)
			continue
		}
		el := time.Since(start)
		fmt.Printf("%-22s %-6v %-50s %12s\n", c.name, res.Holds, res.Algorithm, el.Round(time.Microsecond))
		emit("compile", "detect/"+c.name, map[string]any{
			"holds": res.Holds, "algorithm": res.Algorithm, "time_ns": el.Nanoseconds(),
			"cuts_visited": res.Stats.CutsVisited, "predicate_evals": res.Stats.PredicateEvals,
		})
	}
}

// evalSink defeats dead-code elimination of the timed eval loops.
var evalSink bool

// evalNS times p.Eval over the cut sample and returns ns per evaluation.
func evalNS(comp *computation.Computation, p predicate.Predicate, cuts []computation.Cut) int64 {
	const rounds = 200
	start := time.Now()
	for r := 0; r < rounds; r++ {
		for _, cut := range cuts {
			evalSink = p.Eval(comp, cut)
		}
	}
	return time.Since(start).Nanoseconds() / int64(rounds*len(cuts))
}

// report prints one AST-vs-bitset row and emits its record.
func report(workload, class string, astNS, bitNS int64) {
	speedup := float64(astNS) / float64(bitNS)
	fmt.Printf("%-30s %-12s %12d %12d %7.2fx\n", workload, class, astNS, bitNS, speedup)
	emit("compile", "eval/"+class+"/"+workload, map[string]any{
		"workload": workload, "class": class,
		"ast_ns_per_eval": astNS, "bitset_ns_per_eval": bitNS, "speedup": speedup,
	})
}

// randomCuts samples k uniform cuts of comp (not necessarily consistent;
// evaluation cost does not depend on consistency).
func randomCuts(comp *computation.Computation, k int) []computation.Cut {
	rng := rand.New(rand.NewSource(11))
	cuts := make([]computation.Cut, 0, k)
	for i := 0; i < k; i++ {
		cut := computation.NewCut(comp.N())
		for p := 0; p < comp.N(); p++ {
			cut[p] = rng.Intn(comp.Len(p) + 1)
		}
		cuts = append(cuts, cut)
	}
	return cuts
}

package main

import (
	"fmt"
	"time"

	"repro/internal/computation"
	"repro/internal/control"
	"repro/internal/core"
	"repro/internal/predicate"
	"repro/internal/sim"
)

// runControl demonstrates predicate control (Tarafdar–Garg, the work the
// paper's "controllable" operator is named after): when EG(p) holds,
// synthesize synchronizations that make AG(p) hold on the controlled
// computation, and report strategy size and cost across scales.
func runControl() {
	fmt.Println("p = (acks@P2 ≥ reqs@P1), monotone relational linear predicate")
	fmt.Printf("%8s %8s %8s %10s %12s %12s\n", "|E|", "EG(p)", "AG(p)", "syncs", "synth time", "AG after")
	for _, pairs := range []int{5, 20, 80, 320} {
		comp := reqAckTrace(pairs)
		p := predicate.MonotoneGE{ProcY: 1, VarY: "acks", ProcX: 0, VarX: "reqs"}
		_, eg := core.EGLinear(comp, p)
		_, ag := core.AGLinear(comp, p)
		start := time.Now()
		controlled, syncs, ok := control.Controlled(comp, p)
		dt := time.Since(start)
		after := "-"
		if ok {
			if _, agc := core.AGLinear(controlled, p); agc {
				after = "holds"
			} else {
				after = "FAILS"
			}
		}
		fmt.Printf("%8d %8v %8v %10d %12s %12s\n",
			comp.TotalEvents(), eg, ag, len(syncs), dt.Round(time.Microsecond), after)
		emit("control", "req-ack", map[string]any{
			"events": comp.TotalEvents(), "eg": eg, "ag": ag, "syncs": len(syncs),
			"synth_ns": dt.Nanoseconds(), "ag_after": after, "ok": ok,
		})
	}
}

// reqAckTrace builds two concurrent counter processes: P1 issues `pairs`
// requests, P2 issues `pairs` acks; no messages, so uncontrolled
// executions can let requests run arbitrarily ahead.
func reqAckTrace(pairs int) *computation.Computation {
	b := computation.NewBuilder(2)
	for i := 1; i <= pairs; i++ {
		computation.Set(b.Internal(0), "reqs", i)
	}
	for i := 1; i <= pairs; i++ {
		computation.Set(b.Internal(1), "acks", i)
	}
	c := b.MustBuild()
	_ = sim.Describe // keep sim linked for symmetry with other experiments
	return c
}

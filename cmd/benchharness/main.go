// Command benchharness regenerates the paper's tables and figures:
//
//	table1      Table 1: detection algorithm per (predicate class × operator)
//	fig1        Fig. 1: Algorithms A1 and A2 — correctness and scaling
//	fig2        Fig. 2: example computation, lattice, meet-irreducibles
//	fig3        Fig. 3: NP/co-NP-hardness constructions (Theorems 5 & 6)
//	fig4        Fig. 4: the E[p U q] example detected by Algorithm A3
//	fig5        Fig. 5: Algorithm A3 and the AU composition — scaling
//	ingest      ingest encodings: NDJSON frame-per-event vs binary batched
//	faults      flaky-proxy ingest: resume/replay cost under faults
//	cluster     multi-node cluster: replication overhead and failover cost
//	complexity  §5/§7 complexity claims: structural vs lattice baseline
//	ablation    design-choice ablations from DESIGN.md
//	parallel    parallel sweeps: A2/A3 speedup and determinism check
//	compile     predicate IR: compile/dispatch cost and bitset-lowering payoff
//	spanhb      OTel-style span ingest: decode, HB lowering, detection
//	slice       computation slicing: construction, routed detection, bounded state
//
// Usage: benchharness [-experiment all|table1|fig1|...]
//
// Absolute numbers are machine-dependent; the shapes (who wins, how the
// cost grows) are what reproduce the paper. See EXPERIMENTS.md.
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"

	"repro/internal/buildinfo"
	"repro/internal/obs"
)

var experiments = []struct {
	name string
	desc string
	run  func()
}{
	{"table1", "Table 1: algorithm per (class × operator)", runTable1},
	{"fig1", "Fig. 1: Algorithms A1 and A2", runFig1},
	{"fig2", "Fig. 2: computation, lattice, meet-irreducibles", runFig2},
	{"fig3", "Fig. 3: hardness constructions", runFig3},
	{"fig4", "Fig. 4: the until example", runFig4},
	{"fig5", "Fig. 5: Algorithm A3 scaling", runFig5},
	{"complexity", "structural algorithms vs lattice baseline", runComplexity},
	{"ablation", "design-choice ablations", runAblation},
	{"control", "predicate control: EG witness → enforced AG", runControl},
	{"online", "on-line detection: latency and ingest overhead", runOnline},
	{"server", "hbserver: loopback ingest throughput and verdict latency", runServer},
	{"ingest", "ingest encodings: NDJSON frame-per-event vs binary batched", runIngest},
	{"faults", "flaky-proxy ingest: resume/replay cost under injected faults", runFaults},
	{"cluster", "detection cluster: replication overhead and failover cost", runCluster},
	{"parallel", "parallel sweeps: A2/A3 speedup and determinism check", runParallel},
	{"compile", "predicate IR: compile cost and bitset-lowering payoff", runCompile},
	{"slice", "computation slicing: construction, slice-routed detection, bounded online state", runSlice},
	{"spanhb", "OTel-style span ingest: decode, HB lowering, detection", runSpanhb},
}

func main() {
	which := flag.String("experiment", "all", "experiment id or 'all'")
	jsonOut := flag.Bool("json", false, "emit measurements as JSON on stdout (human tables go to stderr)")
	pprof := flag.Bool("pprof", false, "serve /debug/pprof (and /metrics) on an ephemeral localhost port for the run")
	version := flag.Bool("version", false, "print version and exit")
	flag.Parse()
	if *version {
		buildinfo.Print(os.Stdout, "benchharness")
		return
	}
	if *pprof {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchharness:", err)
			os.Exit(2)
		}
		defer ln.Close()
		mux := obs.NewMux(obs.Default())
		obs.RegisterPprof(mux)
		go http.Serve(ln, mux) //nolint:errcheck // closed on exit
		fmt.Fprintf(os.Stderr, "benchharness: pprof on http://%s/debug/pprof/\n", ln.Addr())
	}
	realStdout := os.Stdout
	if *jsonOut {
		var recs []Record
		recorder = &recs
		// Experiments print their tables with fmt.Printf; divert them so
		// stdout carries only the JSON document.
		os.Stdout = os.Stderr
	}
	ran := false
	for _, e := range experiments {
		if *which == "all" || *which == e.name {
			fmt.Printf("==== %s — %s ====\n", e.name, e.desc)
			e.run()
			fmt.Println()
			ran = true
		}
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "benchharness: unknown experiment %q\n", *which)
		for _, e := range experiments {
			fmt.Fprintf(os.Stderr, "  %-11s %s\n", e.name, e.desc)
		}
		os.Exit(2)
	}
	if *jsonOut {
		os.Stdout = realStdout
		if err := dumpJSON(realStdout); err != nil {
			fmt.Fprintln(os.Stderr, "benchharness:", err)
			os.Exit(2)
		}
	}
}

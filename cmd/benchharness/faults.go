package main

import (
	"context"
	"fmt"
	"net"
	"time"

	"repro/internal/faults"
	"repro/internal/obs"
	"repro/internal/server"
	"repro/internal/server/client"
	"repro/internal/sim"
)

// runFaults measures the cost of fault tolerance: the same streamed EF
// watch is pushed through a seeded flaky proxy at increasing fault
// intensity, and the resuming client must still deliver every event
// exactly once. Reported per intensity: wall-clock ingest (vs the clean
// run), how many resume handshakes the client performed, how many
// buffered frames it retransmitted, and the total disconnected time.
// Upstream silent drops are enabled — they exercise the seq-gap
// detection path — but downstream drops are not, because a verdict
// frame silently dropped on a healthy connection is undetectable by
// design (only connection loss triggers replay; see DESIGN.md).
func runFaults() {
	fmt.Println("flaky-proxy ingest: exactly-once delivery under injected faults (seed 1)")
	fmt.Printf("%8s %10s %12s %12s %10s %12s %12s\n",
		"profile", "events", "ingest", "overhead", "resumes", "replayed", "outage")
	const events = 2000
	comp := sim.Random(sim.DefaultRandomConfig(4, events), 21)
	pred := "conj(x0@P1 >= 2, x0@P2 >= 2, x0@P3 >= 2)"

	var cleanDt time.Duration
	for _, tc := range []struct {
		name string
		cfg  faults.Config
	}{
		{"clean", faults.Config{}},
		{"mild", faults.Config{Reset: 0.002, Partial: 0.001, Drop: 0.003, Dup: 0.01, Delay: 0.02, MaxDelay: time.Millisecond}},
		{"harsh", faults.Config{Reset: 0.01, Partial: 0.005, Drop: 0.02, Dup: 0.04, Delay: 0.05, MaxDelay: 2 * time.Millisecond}},
	} {
		srv := server.New(server.Config{Registry: obs.NewRegistry(), AckEvery: 4, IdleTimeout: 10 * time.Second})
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			panic(err)
		}
		go srv.Serve(ln) //nolint:errcheck // closed by Shutdown

		up := tc.cfg
		up.Seed = 1
		down := up
		down.Drop = 0 // silent downstream drops are undetectable by design
		proxy, err := faults.NewProxyAsym(ln.Addr().String(), up, down)
		if err != nil {
			panic(err)
		}

		sess, err := client.Dial(proxy.Addr(), client.Config{
			Processes:   comp.N(),
			Watches:     []server.Watch{{Op: "EF", Pred: pred}},
			Reconnect:   true,
			DialTimeout: 2 * time.Second,
			BackoffBase: 2 * time.Millisecond,
			BackoffMax:  50 * time.Millisecond,
			MaxAttempts: 60,
			JitterSeed:  1,
		})
		if err != nil {
			panic(err)
		}

		start := time.Now()
		streamComputation(comp, sess, &[]time.Time{})
		if _, err := sess.Snapshot("EF(" + pred + ")"); err != nil { // barrier: all applied
			panic(err)
		}
		dt := time.Since(start)
		stats := sess.Stats()

		gb, err := sess.Close()
		if err != nil {
			panic(err)
		}
		if gb.Events != comp.TotalEvents() {
			panic(fmt.Sprintf("exactly-once violated under %q: goodbye %d events (want %d)",
				tc.name, gb.Events, comp.TotalEvents()))
		}
		proxy.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		srv.Shutdown(ctx) //nolint:errcheck
		cancel()

		if tc.name == "clean" {
			cleanDt = dt
		}
		overhead := "baseline"
		if tc.name != "clean" && cleanDt > 0 {
			overhead = fmt.Sprintf("%.2fx", float64(dt)/float64(cleanDt))
		}
		fmt.Printf("%8s %10d %12s %12s %10d %12d %12s\n",
			tc.name, comp.TotalEvents(), dt.Round(time.Microsecond), overhead,
			stats.Reconnects, stats.Replayed, stats.Outage.Round(time.Microsecond))
		emit("faults", tc.name, map[string]any{
			"events": comp.TotalEvents(), "ingest_ns": dt.Nanoseconds(),
			"reconnects": stats.Reconnects, "replayed": stats.Replayed,
			"outage_ns": stats.Outage.Nanoseconds(),
		})
	}
}

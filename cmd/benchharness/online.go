package main

import (
	"fmt"
	"time"

	"repro/internal/computation"
	"repro/internal/online"
	"repro/internal/sim"
)

// runOnline measures the on-line detectors (the paper's §8 future work):
// detection latency — how many events after the satisfying cut first
// exists does the verdict fire (always 0 for the queue algorithm: the
// verdict is immediate) — and per-event overhead across trace lengths.
func runOnline() {
	fmt.Println("weak-conjunctive EF watch (Garg–Waldecker queues), fed one event at a time")
	fmt.Printf("%8s %10s %14s %16s\n", "|E|", "fired", "events@fire", "ingest time")
	for _, events := range []int{200, 1000, 5000, 20000} {
		comp := sim.Random(sim.DefaultRandomConfig(4, events), 21)
		m := online.NewMonitor(comp.N())
		w := m.WatchEF(
			online.Cmp(0, "x0", ">=", 2),
			online.Cmp(1, "x0", ">=", 2),
			online.Cmp(2, "x0", ">=", 2),
		)
		start := time.Now()
		firedAt := -1
		feedAll(comp, m, func(seen int) {
			if firedAt < 0 && w.Fired() {
				firedAt = seen
			}
		})
		dt := time.Since(start)
		fmt.Printf("%8d %10v %14d %16s\n", events, w.Fired(), firedAt, dt.Round(time.Microsecond))
		emit("online", "ef-watch", map[string]any{
			"events": events, "fired": w.Fired(), "events_at_fire": firedAt,
			"ingest_ns": dt.Nanoseconds(),
		})
	}
	fmt.Println("\nonline AG violation watch: verdict at the first bad local state")
	comp := sim.BuggyMutex(3, 1, 0)
	m := online.NewMonitor(comp.N())
	ag := m.WatchAG(online.Cmp(0, "crit", "<=", 0)) // P1 must never be critical (will fail)
	violatedAt := -1
	feedAll(comp, m, func(seen int) {
		if violatedAt < 0 && ag.Violated() {
			violatedAt = seen
		}
	})
	cut, local := ag.Counterexample()
	fmt.Printf("violation of %q detected after %d/%d events at cut %v\n",
		local, violatedAt, comp.TotalEvents(), cut)
	emit("online", "ag-watch", map[string]any{
		"conjunct": local, "events_at_violation": violatedAt, "events": comp.TotalEvents(),
	})
}

func feedAll(comp *computation.Computation, m *online.Monitor, step func(seen int)) {
	ids := make(map[int]int)
	seq := comp.SomeLinearization()
	seen := 0
	for s := 1; s < len(seq); s++ {
		prev, cur := seq[s-1], seq[s]
		for p := range cur {
			if cur[p] <= prev[p] {
				continue
			}
			e := comp.Event(p, cur[p])
			switch e.Kind {
			case computation.Internal:
				m.Internal(p, e.Sets)
			case computation.Send:
				ids[e.Msg] = m.Send(p, e.Sets)
			case computation.Receive:
				if err := m.Receive(p, ids[e.Msg], e.Sets); err != nil {
					panic(err)
				}
			}
			seen++
			if step != nil {
				step(seen)
			}
			break
		}
	}
}

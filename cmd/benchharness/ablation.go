package main

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/ctl"
	"repro/internal/explore"
	"repro/internal/lattice"
	"repro/internal/predicate"
	"repro/internal/sim"
	"repro/internal/slice"
)

// runAblation measures the design choices called out in DESIGN.md:
//
//  1. A1's arbitrary-predecessor choice vs full backtracking,
//  2. A2's formula-based meet-irreducibles vs lattice degree counting,
//  3. A3 vs explicit-lattice EU,
//  4. slice-based EG vs A1.
func runAblation() {
	p := fig1Pred()

	fmt.Println("[1] A1 arbitrary choice vs backtracking (identical answers, cost gap)")
	fmt.Println("barrier grid: EG(conj(c != 1)) is false; backtracking explores every cut")
	fmt.Println("above the barrier before giving up, A1 walks a single path down to it")
	fmt.Printf("%4s %4s %12s %14s\n", "n", "k", "A1", "backtracking")
	for _, n := range []int{4, 6, 8, 9} {
		comp := sim.Grid(n, 6)
		var locals []predicate.LocalPredicate
		for pr := 0; pr < n; pr++ {
			locals = append(locals, predicate.VarCmp{Proc: pr, Var: "c", Op: predicate.NE, K: 1})
		}
		barrier := predicate.Conjunctive{Locals: locals}
		start := time.Now()
		_, a := core.EGLinear(comp, barrier)
		a1 := time.Since(start)
		start = time.Now()
		b := core.EGLinearBacktracking(comp, barrier)
		bt := time.Since(start)
		status := ""
		if a != b {
			status = "  MISMATCH"
		}
		fmt.Printf("%4d %4d %12s %14s%s\n", n, 6, a1.Round(time.Microsecond), bt.Round(time.Microsecond), status)
		emit("ablation", "a1-vs-backtracking", map[string]any{
			"procs": n, "events_per_proc": 6, "a1_ns": a1.Nanoseconds(),
			"backtracking_ns": bt.Nanoseconds(), "agree": a == b,
		})
	}

	fmt.Println("\n[2] meet-irreducibles: Birkhoff formula vs lattice degree count")
	fmt.Printf("%8s %4s %12s %16s %10s\n", "|E|", "n", "formula", "lattice degrees", "cuts")
	for _, nk := range [][2]int{{3, 6}, {4, 6}, {5, 6}} {
		comp := sim.Grid(nk[0], nk[1])
		start := time.Now()
		mi := core.MeetIrreducibles(comp)
		formula := time.Since(start)
		start = time.Now()
		l := lattice.MustBuild(comp)
		deg := l.MeetIrreducibles()
		viaLattice := time.Since(start)
		status := ""
		if len(mi) != len(deg) {
			status = "  MISMATCH"
		}
		fmt.Printf("%8d %4d %12s %16s %10d%s\n", comp.TotalEvents(), nk[0],
			formula.Round(time.Microsecond), viaLattice.Round(time.Microsecond), l.Size(), status)
		emit("ablation", "meet-irreducibles", map[string]any{
			"events": comp.TotalEvents(), "procs": nk[0], "formula_ns": formula.Nanoseconds(),
			"lattice_ns": viaLattice.Nanoseconds(), "cuts": l.Size(), "agree": len(mi) == len(deg),
		})
	}

	fmt.Println("\n[3] A3 (EU via I_q) vs explicit-lattice EU")
	pc := predicate.Conj(predicate.VarCmp{Proc: 0, Var: "x0", Op: predicate.LE, K: 3})
	q := predicate.AndLinear{Ps: []predicate.Linear{
		predicate.Conj(predicate.VarCmp{Proc: 1, Var: "x0", Op: predicate.GE, K: 1}),
		predicate.ChannelsEmpty{},
	}}
	fmt.Printf("%8s %12s %14s %10s\n", "|E|", "A3", "lattice EU", "cuts")
	for _, events := range []int{12, 16, 20, 24} {
		comp := sim.Random(sim.DefaultRandomConfig(4, events), 19)
		start := time.Now()
		_, a := core.EUConjLinear(comp, pc, q)
		a3 := time.Since(start)
		start = time.Now()
		l := lattice.MustBuild(comp)
		b := explore.Holds(l, ctl.EU{P: ctl.Atom{P: pc}, Q: ctl.Atom{P: q}})
		lat := time.Since(start)
		status := ""
		if a != b {
			status = "  MISMATCH"
		}
		fmt.Printf("%8d %12s %14s %10d%s\n", events, a3.Round(time.Microsecond), lat.Round(time.Microsecond), l.Size(), status)
		emit("ablation", "a3-vs-lattice-eu", map[string]any{
			"events": events, "a3_ns": a3.Nanoseconds(), "lattice_ns": lat.Nanoseconds(),
			"cuts": l.Size(), "agree": a == b,
		})
	}

	fmt.Println("\n[4] slice-based EG vs A1 (even the incremental slice build pays n advancement runs up front)")
	fmt.Printf("%8s %12s %14s\n", "|E|", "A1", "slice EG")
	for _, events := range []int{200, 400, 800} {
		comp := sim.Random(sim.DefaultRandomConfig(3, events), 23)
		start := time.Now()
		_, a := core.EGLinear(comp, p)
		a1 := time.Since(start)
		start = time.Now()
		s := slice.NewIncremental(comp, p)
		b := s.EG()
		sl := time.Since(start)
		status := ""
		if a != b {
			status = "  MISMATCH"
		}
		fmt.Printf("%8d %12s %14s%s\n", events, a1.Round(time.Microsecond), sl.Round(time.Microsecond), status)
		emit("ablation", "a1-vs-slice", map[string]any{
			"events": events, "a1_ns": a1.Nanoseconds(), "slice_ns": sl.Nanoseconds(), "agree": a == b,
		})
	}
}

package main

import (
	"fmt"
	"time"

	"repro/internal/computation"
	"repro/internal/core"
	"repro/internal/ctl"
	"repro/internal/explore"
	"repro/internal/lattice"
	"repro/internal/predicate"
	"repro/internal/sat"
	"repro/internal/sim"
)

func fig1Pred() predicate.Linear {
	return predicate.AndLinear{Ps: []predicate.Linear{
		predicate.Conj(predicate.VarCmp{Proc: 0, Var: "x0", Op: predicate.LE, K: 3}),
		predicate.ChannelsEmpty{},
	}}
}

// runFig1 exercises Algorithms A1 (EG-linear) and A2 (AG-linear): scaling
// series in |E| with n fixed and in n with |E| fixed, demonstrating the
// O(n|E|)-flavored cost the paper claims (per-evaluation predicate cost
// adds a factor for channel predicates).
func runFig1() {
	fmt.Println("A1 = EG(linear), A2 = AG(linear); predicate: x0@P1 <= 3 ∧ channelsEmpty")
	fmt.Printf("%8s %4s %12s %12s\n", "|E|", "n", "A1 time", "A2 time")
	for _, events := range []int{500, 1000, 2000, 4000, 8000} {
		comp := sim.Random(sim.DefaultRandomConfig(4, events), 11)
		p := fig1Pred()
		start := time.Now()
		core.EGLinear(comp, p)
		a1 := time.Since(start)
		start = time.Now()
		core.AGLinear(comp, p)
		a2 := time.Since(start)
		fmt.Printf("%8d %4d %12s %12s\n", events, 4, a1.Round(time.Microsecond), a2.Round(time.Microsecond))
		emit("fig1", "scale-events", map[string]any{
			"events": events, "procs": 4, "a1_ns": a1.Nanoseconds(), "a2_ns": a2.Nanoseconds(),
		})
	}
	for _, n := range []int{2, 4, 8, 16, 32} {
		comp := sim.Random(sim.DefaultRandomConfig(n, 4000), 11)
		p := fig1Pred()
		start := time.Now()
		core.EGLinear(comp, p)
		a1 := time.Since(start)
		start = time.Now()
		core.AGLinear(comp, p)
		a2 := time.Since(start)
		fmt.Printf("%8d %4d %12s %12s\n", 4000, n, a1.Round(time.Microsecond), a2.Round(time.Microsecond))
		emit("fig1", "scale-procs", map[string]any{
			"events": 4000, "procs": n, "a1_ns": a1.Nanoseconds(), "a2_ns": a2.Nanoseconds(),
		})
	}
}

// runFig2 rebuilds the paper's Figure 2: the 2-process computation, its
// 8-cut lattice, the meet-irreducible elements (by degree counting and by
// the Birkhoff formula E − ↑e), and the Corollary 4 factorizations
// X = ⊓{E1,E2,E3,F3} and Y = ⊓{E3,F3}.
func runFig2() {
	comp := sim.Fig2()
	l := lattice.MustBuild(comp)
	fmt.Printf("computation: %s\n", sim.Describe(comp))
	fmt.Printf("lattice:     %s\n", l.ComputeStats())
	fmt.Println("cuts (● = meet-irreducible):")
	mi := map[int]bool{}
	for _, i := range l.MeetIrreducibles() {
		mi[i] = true
	}
	for i, cut := range l.Cuts() {
		marker := " "
		if mi[i] {
			marker = "●"
		}
		fmt.Printf("  %s %v\n", marker, cut)
	}
	fmt.Println("meet-irreducibles via Birkhoff formula M(e) = E − ↑e:")
	for i := 0; i < comp.N(); i++ {
		for _, e := range comp.Events(i) {
			fmt.Printf("  M(%s) = %v\n", e, comp.UpSetComplement(e))
		}
	}
	if err := l.VerifyBirkhoff(); err != nil {
		fmt.Println("BIRKHOFF VERIFICATION FAILED:", err)
		return
	}
	fmt.Println("Birkhoff representation verified on every element.")
	m := func(label string) computation.Cut {
		for i := 0; i < comp.N(); i++ {
			for _, e := range comp.Events(i) {
				if e.Label == label {
					return comp.UpSetComplement(e)
				}
			}
		}
		panic("no event " + label)
	}
	x := computation.Meet(computation.Meet(m("e1"), m("e2")), computation.Meet(m("e3"), m("f3")))
	y := computation.Meet(m("e3"), m("f3"))
	fmt.Printf("Corollary 4: X = ⊓{E1,E2,E3,F3} = %v, Y = ⊓{E3,F3} = %v\n", x, y)
	emit("fig2", "lattice", map[string]any{
		"cuts": l.Size(), "meet_irreducibles": len(l.MeetIrreducibles()),
	})
}

// runFig3 reproduces the hardness constructions: SAT → EG (Theorem 5) and
// TAUTOLOGY → AG (Theorem 6). Answers from the exponential detector are
// compared with direct SAT/TAUT solving, and the running time is shown to
// grow exponentially with the number of variables.
func runFig3() {
	// unsatChain builds the unsatisfiable implication chain
	// x1 ∧ (x1→x2) ∧ … ∧ (x_{m-1}→x_m) ∧ ¬x_m, which forces the
	// exponential detector to exhaust the reachable cut space.
	unsatChain := func(m int) sat.CNF {
		c := sat.CNF{Vars: m, Clauses: [][]int{{1}}}
		for i := 1; i < m; i++ {
			c.Clauses = append(c.Clauses, []int{-i, i + 1})
		}
		c.Clauses = append(c.Clauses, []int{-m})
		return c
	}
	fmt.Println("Theorem 5: EG(P) on the reduction ⟺ φ satisfiable")
	fmt.Println("satisfiable instances exit with a witness; unsatisfiable ones exhaust 3·2^m cuts:")
	fmt.Printf("%6s %10s %8s %10s %12s %10s\n", "vars", "family", "SAT?", "EG(P)?", "EG time", "cuts")
	for _, m := range []int{4, 6, 8, 10, 12, 14, 16} {
		for _, fam := range []string{"random", "unsat"} {
			var cnf sat.CNF
			if fam == "random" {
				cnf = sat.RandomCNF(m, m*2, 3, int64(m))
			} else {
				cnf = unsatChain(m)
			}
			comp, p := sat.ReduceSAT(cnf)
			_, want := sat.Satisfiable(cnf)
			start := time.Now()
			got := core.EGArbitrary(comp, p)
			dt := time.Since(start)
			status := "ok"
			if got != want {
				status = "MISMATCH"
			}
			fmt.Printf("%6d %10s %8v %10v %12s %10d (%s)\n", m, fam, want, got,
				dt.Round(time.Microsecond), 3*(1<<uint(m)), status)
			emit("fig3", "sat-eg", map[string]any{
				"vars": m, "family": fam, "sat": want, "eg": got, "time_ns": dt.Nanoseconds(),
			})
		}
	}
	fmt.Println("\nTheorem 6: AG(P) on the reduction ⟺ φ tautology")
	fmt.Println("tautologies force the detector to sweep every cut; refutable formulas exit early:")
	fmt.Printf("%6s %10s %8s %10s %12s\n", "vars", "family", "TAUT?", "AG(P)?", "AG time")
	for _, m := range []int{4, 6, 8, 10, 12, 14, 16} {
		for _, fam := range []string{"taut", "refutable"} {
			var f sat.Formula
			if fam == "taut" {
				cnf := sat.RandomCNF(m, 4, 3, int64(m))
				f = sat.OrF{cnf, sat.NotF{F: cnf}} // φ ∨ ¬φ
			} else {
				f = sat.OrF{sat.RandomCNF(m, 2, 3, int64(m)), sat.NotF{F: sat.RandomCNF(m, 2, 3, int64(m+50))}}
			}
			comp, p := sat.ReduceTautology(f)
			_, want := sat.Tautology(f)
			start := time.Now()
			got := core.AGArbitrary(comp, p)
			dt := time.Since(start)
			status := "ok"
			if got != want {
				status = "MISMATCH"
			}
			fmt.Printf("%6d %10s %8v %10v %12s (%s)\n", m, fam, want, got, dt.Round(time.Microsecond), status)
			emit("fig3", "taut-ag", map[string]any{
				"vars": m, "family": fam, "taut": want, "ag": got, "time_ns": dt.Nanoseconds(),
			})
		}
	}
}

// runFig4 reproduces the until example of Figure 4: the 3-process
// computation, detection of E[p U q] by Algorithm A3, I_q, the witness
// path, and the lattice path counts the prose describes.
func runFig4() {
	comp := sim.Fig4()
	p := predicate.Conj(
		predicate.VarCmp{Proc: 2, Var: "z", Op: predicate.LT, K: 6},
		predicate.VarCmp{Proc: 0, Var: "x", Op: predicate.LT, K: 4},
	)
	q := predicate.AndLinear{Ps: []predicate.Linear{
		predicate.ChannelsEmpty{},
		predicate.Conj(predicate.VarCmp{Proc: 0, Var: "x", Op: predicate.GT, K: 1}),
	}}
	fmt.Printf("computation: %s\n", sim.Describe(comp))
	fmt.Printf("p = %s (conjunctive)\nq = %s (linear)\n", p, q)

	iq, ok := core.LeastCut(comp, q)
	fmt.Printf("I_q = %v (ok=%v) — paper: {e1, f2, f1, g1}\n", iq, ok)

	path, holds := core.EUConjLinear(comp, p, q)
	fmt.Printf("E[p U q] by A3: %v, witness:\n", holds)
	for _, cut := range path {
		fmt.Printf("  %v\n", cut)
	}

	l := lattice.MustBuild(comp)
	f := ctl.EU{P: ctl.Atom{P: p}, Q: ctl.Atom{P: q}}
	fmt.Printf("lattice EU agrees: %v (lattice has %d cuts)\n", explore.Holds(l, f) == holds, l.Size())

	counts := l.CountPaths()
	total, toIq := int64(0), int64(0)
	for i := 0; i < l.Size(); i++ {
		if q.Eval(comp, l.Cut(i)) {
			total += counts[i]
			if l.Cut(i).Equal(iq) {
				toIq = counts[i]
			}
		}
	}
	fmt.Printf("paths from ∅ to q-cuts: %d (paper: 7); of those to I_q: %d (paper text: 2 — see EXPERIMENTS.md)\n", total, toIq)
	emit("fig4", "until", map[string]any{
		"holds": holds, "witness_length": len(path), "lattice_cuts": l.Size(),
		"paths_to_q": total, "paths_to_iq": toIq,
	})
}

// runFig5 benchmarks Algorithm A3 (EU) and the AU composition across
// sizes, the Section 7 complexity claim.
func runFig5() {
	fmt.Println("A3 = E[p U q] (p conjunctive, q linear); AU composition for disjunctive p, q")
	fmt.Printf("%8s %4s %12s %12s\n", "|E|", "n", "A3 time", "AU time")
	for _, events := range []int{500, 1000, 2000, 4000, 8000} {
		comp := sim.Random(sim.DefaultRandomConfig(4, events), 13)
		p := predicate.Conj(predicate.VarCmp{Proc: 0, Var: "x0", Op: predicate.LE, K: 3})
		q := predicate.AndLinear{Ps: []predicate.Linear{
			predicate.Conj(predicate.VarCmp{Proc: 1, Var: "x0", Op: predicate.GE, K: 1}),
			predicate.ChannelsEmpty{},
		}}
		start := time.Now()
		core.EUConjLinear(comp, p, q)
		a3 := time.Since(start)
		dp := p.Negate()
		dq := predicate.Disj(predicate.VarCmp{Proc: 1, Var: "x0", Op: predicate.GE, K: 1})
		start = time.Now()
		core.AUDisjunctive(comp, dp, dq)
		au := time.Since(start)
		fmt.Printf("%8d %4d %12s %12s\n", events, 4, a3.Round(time.Microsecond), au.Round(time.Microsecond))
		emit("fig5", "scale-events", map[string]any{
			"events": events, "procs": 4, "a3_ns": a3.Nanoseconds(), "au_ns": au.Nanoseconds(),
		})
	}
}

// runComplexity contrasts the structural algorithms with the explicit
// lattice baseline on growing grid computations (worst case for the
// baseline): the crossover the paper's introduction argues.
func runComplexity() {
	fmt.Println("grid computation: n processes × k events, lattice = (k+1)^n cuts")
	fmt.Printf("%4s %4s %10s | %12s %12s %12s | %14s\n",
		"n", "k", "cuts", "EF adv", "A1 EG", "A2 AG", "lattice EG")
	for _, nk := range [][2]int{{2, 8}, {3, 8}, {4, 8}, {5, 8}, {6, 8}, {7, 6}} {
		n, k := nk[0], nk[1]
		comp := sim.Grid(n, k)
		var locals []predicate.LocalPredicate
		for p := 0; p < n; p++ {
			locals = append(locals, predicate.VarCmp{Proc: p, Var: "c", Op: predicate.LE, K: k})
		}
		p := predicate.Conjunctive{Locals: locals}

		start := time.Now()
		core.EFLinear(comp, p)
		ef := time.Since(start)
		start = time.Now()
		core.EGLinear(comp, p)
		a1 := time.Since(start)
		start = time.Now()
		core.AGLinear(comp, p)
		a2 := time.Since(start)

		cuts := "-"
		baseline := "-"
		l, err := lattice.Build(comp)
		if err == nil {
			cuts = fmt.Sprint(l.Size())
			start = time.Now()
			explore.Holds(l, ctl.EG{F: ctl.Atom{P: p}})
			baseline = time.Since(start).Round(time.Microsecond).String()
		} else {
			cuts = ">2e6"
			baseline = "out of budget"
		}
		fmt.Printf("%4d %4d %10s | %12s %12s %12s | %14s\n",
			n, k, cuts,
			ef.Round(time.Microsecond), a1.Round(time.Microsecond), a2.Round(time.Microsecond),
			baseline)
		emit("complexity", "grid", map[string]any{
			"procs": n, "events_per_proc": k, "cuts": cuts,
			"ef_ns": ef.Nanoseconds(), "a1_ns": a1.Nanoseconds(), "a2_ns": a2.Nanoseconds(),
			"lattice_eg": baseline,
		})
	}
}

// Command hbdebug is an interactive debugger for the happened-before
// model: load a trace (or generate a workload), then walk the lattice of
// global states, evaluate predicates, run detection, and replay witnesses.
//
// Usage:
//
//	hbdebug -trace trace.json
//	hbdebug -workload buggymutex:n=3,rounds=1,faulty=1
//
// Type "help" at the prompt for the command list.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/buildinfo"
	"repro/internal/computation"
	"repro/internal/debugger"
	"repro/internal/sim"
	"repro/internal/trace"
)

func main() {
	var (
		traceFile = flag.String("trace", "", "JSON trace file")
		workload  = flag.String("workload", "", "workload spec (see internal/sim.FromSpec)")
		version   = flag.Bool("version", false, "print version and exit")
	)
	flag.Parse()
	if *version {
		buildinfo.Print(os.Stdout, "hbdebug")
		return
	}
	if (*traceFile == "") == (*workload == "") {
		fmt.Fprintln(os.Stderr, "hbdebug: need exactly one of -trace or -workload")
		flag.Usage()
		os.Exit(2)
	}
	var comp *computation.Computation
	var err error
	if *traceFile != "" {
		var f *os.File
		if f, err = os.Open(*traceFile); err == nil {
			comp, err = trace.Decode(f)
			f.Close()
		}
	} else {
		comp, err = sim.FromSpec(*workload)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "hbdebug:", err)
		os.Exit(2)
	}

	s := debugger.NewSession(comp, os.Stdout)
	fmt.Printf("hbdebug: %s — type help\n", sim.Describe(comp))
	sc := bufio.NewScanner(os.Stdin)
	fmt.Print("(hbdebug) ")
	for sc.Scan() {
		if err := s.Execute(sc.Text()); err == io.EOF {
			return
		}
		fmt.Print("(hbdebug) ")
	}
}

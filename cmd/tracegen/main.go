// Command tracegen generates workload traces in the JSON trace format.
//
// Usage:
//
//	tracegen -workload mutex:n=3,rounds=2 -o mutex.json
//	tracegen -workload random:n=4,events=50,seed=7
//
// With no -o the trace is written to stdout.
package main

import (
	"os"

	"repro/internal/cli"
)

func main() {
	os.Exit(cli.RunTraceGen(os.Args[1:], os.Stdout, os.Stderr))
}

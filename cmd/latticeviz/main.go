// Command latticeviz enumerates the lattice of consistent cuts of a small
// computation and reports statistics, optionally emitting Graphviz DOT
// with the cuts satisfying a predicate filled — the format of the paper's
// Figure 2(b) and Figure 4(b).
//
// Usage:
//
//	latticeviz -workload fig2 -stats
//	latticeviz -workload fig4 -mark 'channelsEmpty && x@P1 > 1' -dot fig4.dot
//	latticeviz -trace trace.json -stats
package main

import (
	"os"

	"repro/internal/cli"
)

func main() {
	os.Exit(cli.RunLatticeViz(os.Args[1:], os.Stdout, os.Stderr))
}

// Command hbmon replays a trace through the online monitor (the paper's
// future-work on-line detection) and reports, event by event, when EF
// watches fire and AG watches are violated.
//
// Usage:
//
//	hbmon -trace trace.json -ef 'conj(ready@P1 == 1, ready@P2 == 1)'
//	hbmon -workload buggymutex:n=3,rounds=1,faulty=1 \
//	      -ag 'conj(crit@P1 != 1)' -ag 'conj(crit@P2 != 1)'
//
// Exit status 1 when any AG watch was violated, 0 otherwise, 2 on errors.
package main

import (
	"os"

	"repro/internal/cli"
)

func main() {
	os.Exit(cli.RunMonitor(os.Args[1:], os.Stdout, os.Stderr))
}

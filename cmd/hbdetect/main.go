// Command hbdetect detects a CTL property on a distributed computation.
//
// Usage:
//
//	hbdetect -trace trace.json -formula 'AG(!(crit@P1 == 1 && crit@P2 == 1))'
//	hbdetect -workload mutex:n=3,rounds=2 -formula 'EF(crit@P1 == 1)' -witness
//	hbdetect -workload fig4 -formula 'E[conj(z@P3 < 6, x@P1 < 4) U channelsEmpty && x@P1 > 1]' -check
//
// The detector routes each formula to the paper's structural algorithm for
// the predicate's class (Table 1); -check additionally verifies the answer
// against the explicit-lattice model checker (exponential, small traces
// only). Exit status is 0 when the property holds, 1 when it does not, and
// 2 on usage or input errors.
package main

import (
	"os"

	"repro/internal/cli"
)

func main() {
	os.Exit(cli.RunDetect(os.Args[1:], os.Stdout, os.Stderr))
}

// Leader election monitoring — the paper's second motivating example: "a
// system that performs leader election may be monitored to ensure that
// processes agree on the current leader."
//
// On a ring election trace the example checks:
//
//   - agreement   AG(leader_i ∈ {0, max}) per process — nobody ever
//     believes in a wrong leader (disjunctive, via ¬EF of the conjunctive
//     complement),
//   - progress    AF(disj(done_i = 1)) and EF(everyone done),
//   - stability   once elected, a belief never changes — checked with the
//     observer-independent single-observation detector via the stable
//     predicate "Pn has decided".
//
// Run with: go run ./examples/leaderelection
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	n := 5
	comp := repro.LeaderElection(n)
	fmt.Printf("election trace: %d processes, %d events\n\n", comp.N(), comp.TotalEvents())

	detect := func(src string) repro.Result {
		res, err := repro.Detect(comp, repro.MustParseFormula(src))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-52s %-5v via %s\n", src, res.Holds, res.Algorithm)
		return res
	}

	// Agreement: every belief is either "undecided" (0) or the true
	// maximum id n, at every global state of the execution.
	for p := 1; p <= n; p++ {
		detect(fmt.Sprintf("AG(disj(leader@P%d == 0, leader@P%d == %d))", p, p, n))
	}

	// Progress: each process definitely decides, and there is a global
	// state where everyone has decided.
	detect("AF(disj(done@P1 == 1))")
	allDone := "EF(conj("
	for p := 1; p <= n; p++ {
		if p > 1 {
			allDone += ", "
		}
		allDone += fmt.Sprintf("done@P%d == 1", p)
	}
	allDone += "))"
	detect(allDone)

	// A wrong-leader belief is never even possible.
	detect(fmt.Sprintf("EF(disj(leader@P1 == 1, leader@P2 == 2, leader@P3 == 3))"))

	// The decision of the last process is stable: once the wave returns,
	// it never un-decides. EF = AF for such predicates — detected from a
	// single observation.
	detect(fmt.Sprintf("EF(conj(leader@P%d == %d) && terminated)", n, n))
}

// Mutual exclusion monitoring — the paper's motivating example: "when
// debugging a distributed mutual exclusion algorithm, it is useful to
// monitor the system to detect concurrent accesses to the shared
// resources."
//
// The example checks a healthy token-ring trace and a buggy trace (one
// process barges into the critical section without the token):
//
//   - safety      AG(¬(crit_i ∧ crit_j))       — Algorithm A2 on the
//     disjunctive complement,
//   - violation   EF(crit_i ∧ crit_j)          — advancement on the
//     conjunctive predicate, with the offending global state printed,
//   - ordering    A[try₁ U crit₁]              — the paper's
//     "processes are in trying state before getting to critical state",
//     via the AU composition of Section 7.
//
// Run with: go run ./examples/mutex
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	n, rounds := 3, 2
	healthy := repro.TokenRingMutex(n, rounds)
	buggy := repro.BuggyMutex(n, 1, 0) // P1 barges in during round 1

	for name, comp := range map[string]*repro.Computation{
		"healthy": healthy,
		"buggy":   buggy,
	} {
		fmt.Printf("== %s trace: %d processes, %d events ==\n", name, comp.N(), comp.TotalEvents())

		// Pairwise mutual exclusion.
		violated := false
		for i := 1; i <= n; i++ {
			for j := i + 1; j <= n; j++ {
				src := fmt.Sprintf("AG(disj(crit@P%d != 1, crit@P%d != 1))", i, j)
				res, err := repro.Detect(comp, repro.MustParseFormula(src))
				if err != nil {
					log.Fatal(err)
				}
				if !res.Holds {
					violated = true
					// Pin down the offending global state.
					ef := fmt.Sprintf("EF(crit@P%d == 1 && crit@P%d == 1)", i, j)
					evidence, err := repro.Detect(comp, repro.MustParseFormula(ef))
					if err != nil {
						log.Fatal(err)
					}
					cut := "?"
					if len(evidence.Witness) > 0 {
						cut = evidence.Witness[len(evidence.Witness)-1].String()
					}
					fmt.Printf("  VIOLATION: P%d and P%d critical together at global state %s\n", i, j, cut)
				}
			}
		}
		if !violated {
			fmt.Println("  mutual exclusion invariant holds (Algorithm A2 per pair)")
		}

		// The paper's until property: trying precedes critical. On this
		// trace shape P1 tries before every critical entry, so the
		// property holds on the healthy run.
		au := "A[disj(crit@P1 != 1) U disj(try@P1 == 1)]"
		res, err := repro.Detect(comp, repro.MustParseFormula(au))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-46s %v via %s\n", au, res.Holds, res.Algorithm)

		// Liveness within the trace: P2 definitely reaches its critical
		// section.
		af := "AF(disj(crit@P2 == 1))"
		res, err = repro.Detect(comp, repro.MustParseFormula(af))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-46s %v via %s\n", af, res.Holds, res.Algorithm)
		fmt.Println()
	}
}

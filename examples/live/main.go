// Live instrumentation: execute a real concurrent Go program (goroutines
// exchanging messages), record its happened-before computation via the
// dist harness, and run the paper's detectors on the recorded trace —
// the end-to-end workflow of a deployed monitor.
//
// The program is a primary/backup replication protocol: clients (P3, P4)
// send writes to the primary (P1); the primary applies each write,
// replicates it to the backup (P2), and waits for the ack before
// acknowledging the client. The monitored properties:
//
//   - AG(monotone(applied@P1 >= applied@P2)) — the backup never runs
//     ahead of the primary (relational linear predicate, Algorithm A2
//     route via linearity),
//   - EF(channelsEmpty && applied@P2 == N) — full replication quiescence,
//   - A[disj(acks@P3 == 0) U disj(applied@P2 >= 1)] — no client sees an
//     ack before the backup holds the first write.
//
// Run with: go run ./examples/live
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/ctl"
	"repro/internal/dist"
)

const (
	primary = 0
	backup  = 1
	client1 = 2
	client2 = 3
)

func main() {
	writesPerClient := 2
	total := 2 * writesPerClient

	comp, err := dist.Run(4, 16, func(self int, env *dist.Env) {
		switch self {
		case primary:
			applied := 0
			for i := 0; i < total; i++ {
				from, w := env.Recv() // client write
				applied++
				env.Set("applied", applied)
				env.Send(backup, w) // replicate
				env.Recv()          // backup ack
				env.Send(from, w)   // client ack
			}
		case backup:
			applied := 0
			for i := 0; i < total; i++ {
				_, w := env.Recv()
				applied++
				env.Set("applied", applied)
				env.Send(primary, w)
			}
		default: // clients
			acks := 0
			for i := 1; i <= writesPerClient; i++ {
				env.Send(primary, self*100+i)
				env.RecvSet("acks", func(_, _ int) int { acks++; return acks })
			}
		}
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recorded computation: %d processes, %d events, %d messages\n\n",
		comp.N(), comp.TotalEvents(), len(comp.Messages()))

	formulas := []string{
		"AG(monotone(applied@P1 >= applied@P2))",
		fmt.Sprintf("EF(channelsEmpty && applied@P2 == %d)", total),
		"A[disj(acks@P3 == 0) U disj(applied@P2 >= 1)]",
		"EF(acks@P3 == 2 && acks@P4 == 2)",
	}
	for _, src := range formulas {
		res, err := core.Detect(comp, ctl.MustParse(src))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-52s %-5v\n    via %s\n", src, res.Holds, res.Algorithm)
	}
}

// Remote monitoring: execute a real concurrent Go program and stream its
// happened-before computation, as it unfolds, to an hbserver detection
// session — the deployment shape where the monitored system and the
// monitor are different processes connected by a network.
//
// The example starts an in-process hbserver on a loopback port (stand-in
// for a detection service running elsewhere), opens a session with three
// watches, and runs the primary/backup replication protocol from
// examples/live under dist.RunObserved with the session's Observer, so
// every recorded event is forwarded over TCP the moment it happens.
// Verdicts are pushed back live; at the end, a snapshot query runs an
// offline detector on the server's copy of the computation, and the
// goodbye frame's accounting is cross-checked against the local record.
//
// Run with: go run ./examples/remote
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"time"

	"repro/internal/dist"
	"repro/internal/server"
	"repro/internal/server/client"
)

const (
	primary = 0
	backup  = 1
)

func main() {
	// A detection service; in a real deployment this is `hbserver -listen`
	// on another machine.
	srv := server.New(server.Config{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go srv.Serve(ln) //nolint:errcheck // closed by Shutdown
	fmt.Printf("hbserver on %s\n", ln.Addr())

	writesPerClient := 2
	total := 2 * writesPerClient

	sess, err := client.Dial(ln.Addr().String(), client.Config{
		Processes: 4,
		Watches: []server.Watch{
			{Op: "EF", Pred: fmt.Sprintf("conj(applied@P1 == %d, applied@P2 == %d)", total, total)},
			{Op: "AG", Pred: fmt.Sprintf("conj(applied@P2 <= %d)", total)},
			{Op: "STABLE", Pred: fmt.Sprintf("conj(applied@P2 == %d)", total)},
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("session %s: 4 processes, 3 watches\n\n", sess.ID())

	// Print verdicts as the server pushes them, while the program runs.
	printed := make(chan struct{})
	go func() {
		defer close(printed)
		for {
			select {
			case fr := <-sess.Verdicts():
				fmt.Printf("verdict after %3d events: watch %d %s %s\n",
					fr.Event, fr.Watch, fr.Op, fr.Pred)
				if fr.Cut != nil {
					fmt.Printf("    at cut %v\n", fr.Cut)
				}
			case <-sess.Done():
				return
			}
		}
	}()

	// The monitored program: same protocol as examples/live, but every
	// recorded event streams to the server via the observer.
	comp, err := dist.RunObserved(4, 16, sess.Observer(), func(self int, env *dist.Env) {
		switch self {
		case primary:
			applied := 0
			for i := 0; i < total; i++ {
				from, w := env.Recv() // client write
				applied++
				env.Set("applied", applied)
				env.Send(backup, w) // replicate
				env.Recv()          // backup ack
				env.Send(from, w)   // client ack
			}
		case backup:
			applied := 0
			for i := 0; i < total; i++ {
				_, w := env.Recv()
				applied++
				env.Set("applied", applied)
				env.Send(primary, w)
			}
		default: // clients
			acks := 0
			for i := 1; i <= writesPerClient; i++ {
				env.Send(primary, self*100+i)
				env.RecvSet("acks", func(_, _ int) int { acks++; return acks })
			}
		}
	})
	if err != nil {
		log.Fatal(err)
	}

	// The session still accepts offline queries on the streamed prefix:
	// the full paper operator set, not just the latching watches.
	fr, err := sess.Snapshot("AG(monotone(applied@P1 >= applied@P2))")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsnapshot after %d events: AG(monotone(applied@P1 >= applied@P2)) = %v\n    via %s\n",
		fr.Event, *fr.Holds, fr.Algorithm)

	gb, err := sess.Close()
	if err != nil {
		log.Fatal(err)
	}
	<-printed
	fmt.Printf("\ngoodbye: server applied %d events (%d dropped); local recording has %d\n",
		gb.Events, gb.Dropped, comp.TotalEvents())
	if gb.Events != comp.TotalEvents() {
		log.Fatalf("server and local recordings disagree: %d != %d", gb.Events, comp.TotalEvents())
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		log.Fatal(err)
	}
	fmt.Println("all events accounted for; server drained cleanly")
}

// Quickstart: build a small two-process computation with the Builder,
// then detect a handful of CTL properties on it.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	// A tiny protocol: P1 prepares (x = 1), sends a request, and commits
	// (x = 2) — while P2 receives the request and acknowledges (y = 1).
	b := repro.NewBuilder(2)
	prepare := b.Internal(0)
	setVar(prepare, "x", 1)

	_, req := b.Send(0)
	recv := b.Receive(1, req)
	setVar(recv, "y", 1)

	commit := b.Internal(0)
	setVar(commit, "x", 2)

	comp, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}

	// Detection routes each formula to the best algorithm for the
	// predicate class — the paper's Table 1.
	formulas := []string{
		"EF(x@P1 == 2 && y@P2 == 1)",     // possibly: both sides done
		"AF(disj(y@P2 == 1))",            // definitely: the ack happens
		"AG(disj(x@P1 < 2, y@P2 == 1))",  // invariant: no commit before ack... does it hold?
		"EG(conj(x@P1 <= 2))",            // controllable: x stays bounded
		"E[conj(y@P2 == 0) U x@P1 == 1]", // until: prepare precedes the ack
	}
	for _, src := range formulas {
		f := repro.MustParseFormula(src)
		res, err := repro.Detect(comp, f)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-38s %-5v via %s\n", src, res.Holds, res.Algorithm)
		if len(res.Witness) > 0 {
			fmt.Printf("%38s witness ends at %v\n", "", res.Witness[len(res.Witness)-1])
		}
		if res.Counterexample != nil {
			fmt.Printf("%38s counterexample %v\n", "", res.Counterexample)
		}
	}
}

// setVar attaches a variable assignment to an event.
func setVar(e *repro.Event, name string, v int) {
	if e.Sets == nil {
		e.Sets = map[string]int{}
	}
	e.Sets[name] = v
}

// Online monitoring — the paper's future-work item, running: events are
// fed to a monitor as they are observed, and detection verdicts fire
// mid-stream, at the earliest prefix that determines them.
//
// The scenario is a rolling upgrade across three replicas: each replica
// drains its queue (ready = 1), and an operator wants to know the moment
// "all replicas simultaneously ready" becomes possible (weak conjunctive
// EF — the Garg–Waldecker queue algorithm) and whether the invariant
// "never two replicas down at once" is violated (online AG).
//
// Run with: go run ./examples/monitor
package main

import (
	"fmt"

	"repro/internal/ctl"
	"repro/internal/online"
)

func main() {
	m := online.NewMonitor(3)
	for p := 0; p < 3; p++ {
		m.SetInitial(p, "up", 1)
	}

	// Watches must be registered before the stream starts.
	allReady := m.WatchEF(
		online.Cmp(0, "ready", "==", 1),
		online.Cmp(1, "ready", "==", 1),
		online.Cmp(2, "ready", "==", 1),
	)
	neverTwoDown := m.WatchAG(
		online.Cmp(0, "down2", "==", 0),
	)
	quiescent := m.WatchStable("all-acked", func(m *online.Monitor) bool {
		return m.InFlight() == 0 && m.Value(0, "acks") == 2
	})

	step := 0
	report := func(what string) {
		step++
		fmt.Printf("%2d. %-34s EF(allReady)=%-5v AG=%-5v stable=%v\n",
			step, what, allReady.Fired(), !neverTwoDown.Violated(), quiescent.Fired())
	}

	// Replica 1 (coordinator) asks 2 and 3 to drain.
	req2 := m.Send(0, map[string]int{"down2": 0})
	report("P1 sends drain request to P2")
	req3 := m.Send(0, nil)
	report("P1 sends drain request to P3")

	// Replica 2 drains and becomes ready.
	check(m.Receive(1, req2, nil))
	report("P2 receives drain request")
	m.Internal(1, map[string]int{"ready": 1})
	report("P2 drains (ready=1)")
	ack2 := m.Send(1, nil)
	report("P2 acks")

	// Replica 3 likewise.
	check(m.Receive(2, req3, nil))
	report("P3 receives drain request")
	m.Internal(2, map[string]int{"ready": 1})
	report("P3 drains (ready=1)")
	ack3 := m.Send(2, nil)
	report("P3 acks")

	// Coordinator collects acks and becomes ready itself — the EF watch
	// fires the moment a consistent cut with all three ready exists.
	check(m.Receive(0, ack2, map[string]int{"acks": 1}))
	report("P1 receives ack from P2")
	m.Internal(0, map[string]int{"ready": 1})
	report("P1 ready itself")
	check(m.Receive(0, ack3, map[string]int{"acks": 2}))
	report("P1 receives ack from P3")

	if allReady.Fired() {
		fmt.Printf("\nall replicas simultaneously ready at global state %v (detected online)\n", allReady.Cut())
	}
	if quiescent.Fired() {
		fmt.Printf("quiescence (all acks in, channels empty) after %d events\n", quiescent.FiredAt())
	}

	// The full operator set remains available on the observed prefix via
	// the snapshot bridge.
	res, err := m.Detect(ctl.MustParse("A[disj(ready@P1 == 0) U disj(acks@P1 == 2)]"))
	check(err)
	fmt.Printf("offline bridge: A[¬ready U allAcks] = %v via %s\n", res.Holds, res.Algorithm)
}

func check(err error) {
	if err != nil {
		panic(err)
	}
}

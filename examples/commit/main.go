// Two-phase commit debugging with until-properties and channel predicates.
//
// On commit and abort traces the example checks:
//
//   - atomicity   AG(¬(decided_i = commit ∧ decided_j = abort)) — no two
//     processes decide differently, ever,
//   - ordering    E[undecided U voted] — the coordinator's decision waits
//     for the votes (Algorithm A3 with a channel-augmented q),
//   - quiescence  EF(channelsEmpty ∧ everyone decided) — the protocol
//     drains its channels (the paper's Fig. 4 predicate shape),
//   - fault check EF(decided mismatch) on a trace where one participant
//     aborts — the detector proves the mismatch never occurs.
//
// Run with: go run ./examples/commit
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	participants := 3
	commitRun := repro.TwoPhaseCommit(participants, 0) // unanimous commit
	abortRun := repro.TwoPhaseCommit(participants, 2)  // participant 2 aborts

	for name, comp := range map[string]*repro.Computation{
		"commit-run": commitRun,
		"abort-run":  abortRun,
	} {
		fmt.Printf("== %s: %d processes, %d events ==\n", name, comp.N(), comp.TotalEvents())
		detect := func(src string) repro.Result {
			res, err := repro.Detect(comp, repro.MustParseFormula(src))
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %-66s %-5v\n      via %s\n", src, res.Holds, res.Algorithm)
			return res
		}

		// Atomicity: no global state mixes a commit decision with an
		// abort decision, across any pair of processes.
		total := participants + 1
		for i := 1; i <= total; i++ {
			for j := 1; j <= total; j++ {
				if i == j {
					continue
				}
				src := fmt.Sprintf("AG(disj(decided@P%d != 1, decided@P%d != 2))", i, j)
				res, err := repro.Detect(comp, repro.MustParseFormula(src))
				if err != nil {
					log.Fatal(err)
				}
				if !res.Holds {
					fmt.Printf("  ATOMICITY VIOLATION between P%d and P%d at %v\n", i, j, res.Counterexample)
				}
			}
		}
		fmt.Println("  atomicity invariant holds for all pairs (Algorithm A2)")

		// Ordering: the coordinator stays undecided until participant 1's
		// vote is in flight or delivered — an until with conjunctive p and
		// linear q.
		detect("E[conj(decided@P1 == 0) U vote@P2 != 0]")

		// Quiescence: eventually all channels drain and everyone has
		// decided (conjunctive ∧ channel predicate — linear, like the
		// paper's Fig. 4 q).
		q := "EF(channelsEmpty && conj("
		for p := 1; p <= total; p++ {
			if p > 1 {
				q += ", "
			}
			q += fmt.Sprintf("decided@P%d != 0", p)
		}
		q += "))"
		detect(q)

		// Definitely-decided: every observation sees the coordinator
		// decide.
		detect("AF(disj(decided@P1 != 0))")
		fmt.Println()
	}
}

package repro

// Benchmarks regenerating the paper's tables and figures. One benchmark
// family per artifact:
//
//	BenchmarkTable1*     — Table 1, the polynomial cells
//	BenchmarkA1*, A2*    — Fig. 1 (EG/AG for linear predicates), scaling
//	BenchmarkFig2*       — Fig. 2 (meet-irreducible computation)
//	BenchmarkHardness*   — Fig. 3 (Theorems 5 & 6 reductions)
//	BenchmarkA3*, AU*    — Figs. 4 & 5 (until operators)
//	BenchmarkScaling*    — §5/§7 complexity claims vs the lattice baseline
//	BenchmarkAblation*   — DESIGN.md ablations
//
// Run: go test -bench=. -benchmem

import (
	"fmt"
	"testing"

	"repro/internal/computation"
	"repro/internal/core"
	"repro/internal/ctl"
	"repro/internal/explore"
	"repro/internal/lattice"
	"repro/internal/predicate"
	"repro/internal/sat"
	"repro/internal/sim"
)

func benchConj() predicate.Conjunctive {
	return predicate.Conj(
		predicate.VarCmp{Proc: 0, Var: "x0", Op: predicate.LE, K: 3},
		predicate.VarCmp{Proc: 1, Var: "x0", Op: predicate.LE, K: 3},
	)
}

func benchLinear() predicate.Linear {
	return predicate.AndLinear{Ps: []predicate.Linear{benchConj(), predicate.ChannelsEmpty{}}}
}

var benchComp = sim.Random(sim.DefaultRandomConfig(4, 2000), 5)

// --- Table 1 -------------------------------------------------------------

func BenchmarkTable1(b *testing.B) {
	cells := []struct {
		name string
		f    ctl.Formula
	}{
		{"Conjunctive/EF", ctl.EF{F: ctl.Atom{P: benchConj()}}},
		{"Conjunctive/AF", ctl.AF{F: ctl.Atom{P: benchConj()}}},
		{"Conjunctive/EG", ctl.EG{F: ctl.Atom{P: benchConj()}}},
		{"Conjunctive/AG", ctl.AG{F: ctl.Atom{P: benchConj()}}},
		{"Disjunctive/EF", ctl.EF{F: ctl.Atom{P: benchConj().Negate()}}},
		{"Disjunctive/AF", ctl.AF{F: ctl.Atom{P: benchConj().Negate()}}},
		{"Disjunctive/EG", ctl.EG{F: ctl.Atom{P: benchConj().Negate()}}},
		{"Disjunctive/AG", ctl.AG{F: ctl.Atom{P: benchConj().Negate()}}},
		{"Stable/EF", ctl.EF{F: ctl.Atom{P: predicate.Stable{P: predicate.Received{ID: 1}}}}},
		{"Stable/AF", ctl.AF{F: ctl.Atom{P: predicate.Stable{P: predicate.Received{ID: 1}}}}},
		{"Stable/EG", ctl.EG{F: ctl.Atom{P: predicate.Stable{P: predicate.Received{ID: 1}}}}},
		{"Stable/AG", ctl.AG{F: ctl.Atom{P: predicate.Stable{P: predicate.Received{ID: 1}}}}},
		{"Linear/EF", ctl.EF{F: ctl.Atom{P: benchLinear()}}},
		{"Linear/EG", ctl.EG{F: ctl.Atom{P: benchLinear()}}},
		{"Linear/AG", ctl.AG{F: ctl.Atom{P: benchLinear()}}},
		{"Regular/EG", ctl.EG{F: ctl.Atom{P: predicate.ChannelsEmpty{}}}},
		{"Regular/AG", ctl.AG{F: ctl.Atom{P: predicate.ChannelsEmpty{}}}},
		{"ObserverIndep/EF", ctl.EF{F: ctl.Atom{P: predicate.ObserverIndependent{P: benchConj().Negate()}}}},
		{"ObserverIndep/AF", ctl.AF{F: ctl.Atom{P: predicate.ObserverIndependent{P: benchConj().Negate()}}}},
	}
	for _, c := range cells {
		b.Run(c.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.Detect(benchComp, c.f); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Fig. 1: Algorithms A1 and A2 ---------------------------------------

func BenchmarkA1EGLinear(b *testing.B) {
	for _, events := range []int{500, 2000, 8000} {
		comp := sim.Random(sim.DefaultRandomConfig(4, events), 11)
		p := benchLinear()
		b.Run(fmt.Sprintf("E%d", events), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				core.EGLinear(comp, p)
			}
		})
	}
	for _, n := range []int{2, 8, 32} {
		comp := sim.Random(sim.DefaultRandomConfig(n, 4000), 11)
		p := benchLinear()
		b.Run(fmt.Sprintf("N%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				core.EGLinear(comp, p)
			}
		})
	}
}

func BenchmarkA2AGLinear(b *testing.B) {
	for _, events := range []int{500, 2000, 8000} {
		comp := sim.Random(sim.DefaultRandomConfig(4, events), 11)
		p := benchLinear()
		b.Run(fmt.Sprintf("E%d", events), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				core.AGLinear(comp, p)
			}
		})
	}
}

// --- Fig. 2: meet-irreducibles -------------------------------------------

func BenchmarkFig2MeetIrreducibles(b *testing.B) {
	comp := sim.Fig2()
	b.Run("BirkhoffFormula", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			core.MeetIrreducibles(comp)
		}
	})
	b.Run("LatticeDegrees", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			l := lattice.MustBuild(comp)
			l.MeetIrreducibles()
		}
	})
}

// --- Fig. 3: hardness -----------------------------------------------------

func BenchmarkHardnessEGSat(b *testing.B) {
	for _, m := range []int{8, 12, 16} {
		// Unsatisfiable implication chain: the detector must exhaust the
		// reachable cut space (3·2^m cuts).
		cnf := sat.CNF{Vars: m, Clauses: [][]int{{1}}}
		for i := 1; i < m; i++ {
			cnf.Clauses = append(cnf.Clauses, []int{-i, i + 1})
		}
		cnf.Clauses = append(cnf.Clauses, []int{-m})
		comp, p := sat.ReduceSAT(cnf)
		b.Run(fmt.Sprintf("vars%d", m), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if core.EGArbitrary(comp, p) {
					b.Fatal("unsat formula detected as EG-true")
				}
			}
		})
	}
}

func BenchmarkHardnessAGTaut(b *testing.B) {
	for _, m := range []int{8, 12, 16} {
		cnf := sat.RandomCNF(m, 4, 3, int64(m))
		f := sat.OrF{cnf, sat.NotF{F: cnf}}
		comp, p := sat.ReduceTautology(f)
		b.Run(fmt.Sprintf("vars%d", m), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if !core.AGArbitrary(comp, p) {
					b.Fatal("tautology detected as AG-false")
				}
			}
		})
	}
}

// --- Figs. 4 & 5: until ---------------------------------------------------

func BenchmarkA3EU(b *testing.B) {
	b.Run("Fig4", func(b *testing.B) {
		comp := sim.Fig4()
		p := predicate.Conj(
			predicate.VarCmp{Proc: 2, Var: "z", Op: predicate.LT, K: 6},
			predicate.VarCmp{Proc: 0, Var: "x", Op: predicate.LT, K: 4},
		)
		q := predicate.AndLinear{Ps: []predicate.Linear{
			predicate.ChannelsEmpty{},
			predicate.Conj(predicate.VarCmp{Proc: 0, Var: "x", Op: predicate.GT, K: 1}),
		}}
		for i := 0; i < b.N; i++ {
			if _, ok := core.EUConjLinear(comp, p, q); !ok {
				b.Fatal("Fig4 EU must hold")
			}
		}
	})
	for _, events := range []int{500, 2000, 8000} {
		comp := sim.Random(sim.DefaultRandomConfig(4, events), 13)
		p := predicate.Conj(predicate.VarCmp{Proc: 0, Var: "x0", Op: predicate.LE, K: 3})
		q := predicate.AndLinear{Ps: []predicate.Linear{
			predicate.Conj(predicate.VarCmp{Proc: 1, Var: "x0", Op: predicate.GE, K: 1}),
			predicate.ChannelsEmpty{},
		}}
		b.Run(fmt.Sprintf("E%d", events), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				core.EUConjLinear(comp, p, q)
			}
		})
	}
}

func BenchmarkAUDisjunctive(b *testing.B) {
	for _, events := range []int{500, 2000, 8000} {
		comp := sim.Random(sim.DefaultRandomConfig(4, events), 13)
		p := predicate.Disj(predicate.VarCmp{Proc: 0, Var: "x0", Op: predicate.GT, K: 3})
		q := predicate.Disj(predicate.VarCmp{Proc: 1, Var: "x0", Op: predicate.GE, K: 1})
		b.Run(fmt.Sprintf("E%d", events), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				core.AUDisjunctive(comp, p, q)
			}
		})
	}
}

// --- §5/§7 complexity: structural vs lattice baseline ---------------------

func BenchmarkScalingStructuralVsLattice(b *testing.B) {
	for _, n := range []int{3, 5, 6} {
		comp := sim.Grid(n, 8)
		var locals []predicate.LocalPredicate
		for p := 0; p < n; p++ {
			locals = append(locals, predicate.VarCmp{Proc: p, Var: "c", Op: predicate.LE, K: 8})
		}
		p := predicate.Conjunctive{Locals: locals}
		b.Run(fmt.Sprintf("A1/n%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				core.EGLinear(comp, p)
			}
		})
		b.Run(fmt.Sprintf("LatticeEG/n%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				l := lattice.MustBuild(comp)
				explore.Holds(l, ctl.EG{F: ctl.Atom{P: p}})
			}
		})
	}
}

// --- Ablations -------------------------------------------------------------

func BenchmarkAblationA1VsBacktracking(b *testing.B) {
	comp := sim.Grid(6, 6)
	var locals []predicate.LocalPredicate
	for p := 0; p < 6; p++ {
		locals = append(locals, predicate.VarCmp{Proc: p, Var: "c", Op: predicate.NE, K: 1})
	}
	barrier := predicate.Conjunctive{Locals: locals}
	b.Run("A1", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			core.EGLinear(comp, barrier)
		}
	})
	b.Run("Backtracking", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			core.EGLinearBacktracking(comp, barrier)
		}
	})
}

func BenchmarkAblationLeastCutVsLattice(b *testing.B) {
	comp := sim.Random(sim.DefaultRandomConfig(4, 16), 19)
	p := benchConj()
	b.Run("Advancement", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			core.LeastCut(comp, p)
		}
	})
	b.Run("LatticeLeastSat", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			l := lattice.MustBuild(comp)
			l.LeastSat(p)
		}
	})
}

// --- Facade-level end-to-end ------------------------------------------------

func BenchmarkDetectParsedFormula(b *testing.B) {
	comp := TokenRingMutex(4, 3)
	f := MustParseFormula("AG(disj(crit@P1 != 1, crit@P2 != 1))")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Detect(comp, f); err != nil {
			b.Fatal(err)
		}
	}
}

var sinkCut computation.Cut

func BenchmarkSimWorkloads(b *testing.B) {
	b.Run("TokenRingMutex", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sinkCut = TokenRingMutex(4, 2).FinalCut()
		}
	})
	b.Run("Random2000", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sinkCut = sim.Random(sim.DefaultRandomConfig(4, 2000), int64(i)).FinalCut()
		}
	})
}

package repro

import (
	"bytes"
	"fmt"
	"testing"
)

func TestFacadeDetect(t *testing.T) {
	comp := TokenRingMutex(3, 1)
	res, err := Detect(comp, MustParseFormula("AG(!(crit@P1 == 1 && crit@P2 == 1))"))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Holds {
		t.Errorf("mutual exclusion invariant should hold (counterexample %v)", res.Counterexample)
	}

	buggy := BuggyMutex(3, 1, 0)
	res, err = Detect(buggy, MustParseFormula("EF(crit@P1 == 1 && crit@P2 == 1)"))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Holds {
		t.Error("injected violation not detected")
	}
}

func TestFacadeParseAndRandom(t *testing.T) {
	if _, err := ParseFormula("EF("); err == nil {
		t.Error("bad formula accepted")
	}
	f, err := ParseFormula("EF(channelsEmpty)")
	if err != nil {
		t.Fatal(err)
	}
	comp := RandomComputation(RandomConfig{Procs: 3, Events: 20, SendProb: 0.3, RecvProb: 0.7, Vars: 1, ValRange: 2}, 9)
	res, err := Detect(comp, f)
	if err != nil || !res.Holds {
		t.Errorf("EF(channelsEmpty) on random computation: %v, %v", res.Holds, err)
	}
}

func TestFacadeTraceRoundTrip(t *testing.T) {
	comp := Fig4()
	var buf bytes.Buffer
	if err := EncodeTrace(&buf, comp); err != nil {
		t.Fatal(err)
	}
	back, err := DecodeTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.TotalEvents() != comp.TotalEvents() || back.N() != comp.N() {
		t.Error("round trip changed the computation")
	}
}

func TestFacadeBuilder(t *testing.T) {
	b := NewBuilder(2)
	_, m := b.Send(0)
	b.Receive(1, m)
	comp, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	res, err := Detect(comp, MustParseFormula("EF(channelsEmpty && received(1))"))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Holds {
		t.Error("EF(channelsEmpty && received(1)) should hold")
	}
}

func TestFacadeRenderDiagram(t *testing.T) {
	comp := Fig4()
	out := RenderDiagram(comp, Cut{1, 2, 1})
	for _, want := range []string{"[e1", "msgs", "cut"} {
		if !bytes.Contains([]byte(out), []byte(want)) {
			t.Errorf("diagram missing %q:\n%s", want, out)
		}
	}
	if plain := RenderDiagram(comp, nil); plain == "" {
		t.Error("nil-cut diagram empty")
	}
}

func TestFacadeControl(t *testing.T) {
	b := NewBuilder(2)
	setVarT(b.Internal(0), "x", 1)
	setVarT(b.Internal(1), "y", 1)
	comp, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	// y ≥ x is not expressible in the formula syntax; use a conjunctive
	// predicate that is controllable (holds on some full path): here
	// x ≤ 1 holds everywhere, so control is trivial (no syncs).
	controlled, syncs, err := Control(comp, "conj(x@P1 <= 1)")
	if err != nil {
		t.Fatal(err)
	}
	if len(syncs) != 0 {
		t.Errorf("trivially invariant predicate needed syncs %v", syncs)
	}
	if controlled.TotalEvents() != comp.TotalEvents() {
		t.Error("controlled computation changed size without syncs")
	}
	// Errors surface.
	if _, _, err := Control(comp, "EF(true)"); err == nil {
		t.Error("temporal input accepted")
	}
	if _, _, err := Control(comp, "x@"); err == nil {
		t.Error("parse error swallowed")
	}
	if _, _, err := Control(comp, "conj(x@P1 >= 5)"); err == nil {
		t.Error("uncontrollable predicate accepted")
	}
}

func setVarT(e *Event, name string, v int) {
	if e.Sets == nil {
		e.Sets = map[string]int{}
	}
	e.Sets[name] = v
}

func ExampleDetect() {
	comp := Fig4()
	f := MustParseFormula("E[conj(z@P3 < 6, x@P1 < 4) U channelsEmpty && x@P1 > 1]")
	res, _ := Detect(comp, f)
	fmt.Println(res.Holds)
	fmt.Println(res.Witness[len(res.Witness)-1]) // I_q = {e1, f1, f2, g1}
	// Output:
	// true
	// <1 2 1>
}
